package qos_test

// End-to-end admission and breaker tests over the real RPC stack: tenants
// are containers, requests flow client -> portals -> admission -> storage
// handlers, and the assertions read the same qos.* instruments operators
// would. These run in the CI race job and (the chaos one) the seed matrix.

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"lwfs/internal/authn"
	"lwfs/internal/authz"
	"lwfs/internal/netsim"
	"lwfs/internal/portals"
	"lwfs/internal/qos"
	"lwfs/internal/sim"
	"lwfs/internal/storage"
	"lwfs/internal/testrig"
)

// tenantSession is one tenant's identity: its own container (= tenant ID)
// and caps, plus an object on the shared storage server.
type tenantSession struct {
	cid  authz.ContainerID
	caps map[authz.Op]authz.Capability
	ref  storage.ObjRef
}

func newTenantSession(t *testing.T, p *sim.Proc, r *testrig.Rig, node int, user authn.Principal, srv *storage.Server) *tenantSession {
	t.Helper()
	cred, err := r.AuthnClient(node).Login(p, user, testrig.Secret(user))
	if err != nil {
		t.Fatalf("login %s: %v", user, err)
	}
	az := r.AuthzClient(node)
	cid, err := az.CreateContainer(p, cred)
	if err != nil {
		t.Fatalf("container: %v", err)
	}
	caps, err := az.GetCaps(p, cred, cid, authz.OpCreate, authz.OpWrite, authz.OpRead)
	if err != nil {
		t.Fatalf("getcaps: %v", err)
	}
	s := &tenantSession{cid: cid, caps: make(map[authz.Op]authz.Capability)}
	for _, c := range caps {
		s.caps[c.Op] = c
	}
	sc := storage.NewClient(r.Caller(node))
	s.ref, err = sc.Create(p, storage.Target{Node: srv.Node(), Port: srv.RPCPort()}, s.caps[authz.OpCreate], cid)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	return s
}

// TestQoSFairShareStress: three tenants on separate nodes hammer one
// admission-controlled storage server with very different request
// granularities (256 KiB, 128 KiB, 64 KiB) but equal total demand. The
// fair-queue invariant: while all tenants are backlogged, admitted bytes
// stay equal within one DRR quantum plus a max request per tenant — FIFO
// would instead track arrival order and request size. Afterwards, exact
// counter totals prove no request was lost or double-admitted. Runs under
// -race in CI.
func TestQoSFairShareStress(t *testing.T) {
	const (
		kb      = int64(1) << 10
		quantum = 64 * kb
		procs   = 6 // writer procs per tenant
	)
	// Per-tenant request sizes; counts keep total bytes equal (6 MiB each).
	sizes := []int64{256 * kb, 128 * kb, 64 * kb}
	writes := []int{4, 8, 16} // per proc
	users := testrig.Users
	totalBytes := int64(procs) * int64(writes[0]) * sizes[0]

	r := testrig.New(5)
	cfg := storage.DefaultConfig()
	cfg.Threads = 2 // deep admission queue: service is the bottleneck
	cfg.QoS = &qos.Config{MaxQueue: 1024, Quantum: quantum}
	srv := r.StorageServer(1, cfg)
	reg := r.Eps[1].Metrics()

	sessions := make([]*tenantSession, 3)
	inflight := make([]int, 3)
	var writersDone int

	for ti := 0; ti < 3; ti++ {
		ti := ti
		node := 2 + ti
		r.Go(fmt.Sprintf("tenant%d", ti), func(p *sim.Proc) {
			sessions[ti] = newTenantSession(t, p, r, node, users[ti], srv)
			for w := 0; w < procs; w++ {
				w := w
				r.Go(fmt.Sprintf("tenant%d/w%d", ti, w), func(p *sim.Proc) {
					defer func() { writersDone++ }()
					sc := storage.NewClient(r.Caller(node))
					s := sessions[ti]
					base := int64(w) * int64(writes[ti]) * sizes[ti]
					for i := 0; i < writes[ti]; i++ {
						inflight[ti]++
						n, err := sc.Write(p, s.ref, s.caps[authz.OpWrite], base+int64(i)*sizes[ti], netsim.SyntheticPayload(sizes[ti]))
						inflight[ti]--
						if err != nil || n != sizes[ti] {
							t.Errorf("tenant %d write: n=%d err=%v", ti, n, err)
							return
						}
					}
				})
			}
		})
	}

	admittedOf := func(ti int) int64 {
		if sessions[ti] == nil {
			return 0
		}
		return reg.Counter(fmt.Sprintf("qos.osd1.tenant.%d.admitted_bytes", uint64(sessions[ti].cid))).Value()
	}

	// Invariant monitor: whenever every tenant has >= 5 requests in flight
	// (Threads=2, so each then holds >= 3 queued at admission — solidly
	// backlogged), the pairwise admitted-byte skew must stay within one
	// quantum plus two max requests (one may be mid-dispatch on each side).
	var samples int
	bound := quantum + 2*sizes[0]
	r.Go("monitor", func(p *sim.Proc) {
		for writersDone < 3*procs {
			if inflight[0] >= 5 && inflight[1] >= 5 && inflight[2] >= 5 {
				var vals [3]int64
				for ti := range vals {
					vals[ti] = admittedOf(ti)
				}
				lo, hi := vals[0], vals[0]
				for _, v := range vals[1:] {
					if v < lo {
						lo = v
					}
					if v > hi {
						hi = v
					}
				}
				if hi-lo > bound {
					t.Errorf("admitted-byte skew %d exceeds quantum+2*maxreq %d (vals=%v) at %v", hi-lo, bound, vals, p.Now())
					return
				}
				samples++
			}
			p.Sleep(200 * time.Microsecond)
		}
	})
	r.Run(t)

	if samples < 10 {
		t.Fatalf("only %d backlogged fairness samples — load never queued deeply enough", samples)
	}
	// Exact accounting: per tenant, one create (min cost 1 KiB) plus every
	// write's bytes, nothing lost, nothing duplicated, nothing shed.
	for ti := range sessions {
		want := totalBytes + kb
		if got := admittedOf(ti); got != want {
			t.Errorf("tenant %d admitted_bytes %d, want exactly %d", ti, got, want)
		}
	}
	if shed := reg.Counter("qos.osd1.shed").Value(); shed != 0 {
		t.Errorf("shed %d requests with an uncapped queue", shed)
	}
	if n := srv.Admission().Len(); n != 0 {
		t.Errorf("admission queue not drained: %d", n)
	}
}

// TestQoSOverloadShedRPC: a storage server with a tiny admission queue and
// slow service sheds a synchronized 16-client burst with ErrOverload —
// immediately, at submit time, not after the request ages into a timeout.
func TestQoSOverloadShedRPC(t *testing.T) {
	const (
		nClients = 16
		wsize    = 64 << 10
	)
	r := testrig.New(3)
	cfg := storage.DefaultConfig()
	cfg.Threads = 1
	cfg.OpCost = 2 * time.Millisecond // slow service: the queue fills
	cfg.QoS = &qos.Config{MaxQueue: 4}
	srv := r.StorageServer(1, cfg)
	reg := r.Eps[1].Metrics()

	var oks, sheds int
	r.Go("flood", func(p *sim.Proc) {
		s := newTenantSession(t, p, r, 2, "alice", srv)
		for i := 0; i < nClients; i++ {
			i := i
			r.Go(fmt.Sprintf("c%d", i), func(p *sim.Proc) {
				sc := storage.NewClient(r.Caller(2))
				start := p.Now()
				_, err := sc.Write(p, s.ref, s.caps[authz.OpWrite], int64(i)*wsize, netsim.SyntheticPayload(wsize))
				elapsed := p.Now().Sub(start)
				switch {
				case err == nil:
					oks++
				case errors.Is(err, portals.ErrOverload):
					sheds++
					// The shed answer comes from the intake daemon before
					// service — a network round trip, not a service wait.
					if elapsed > time.Millisecond {
						t.Errorf("shed reply took %v, want sub-millisecond fast-fail", elapsed)
					}
				default:
					t.Errorf("client %d: %v", i, err)
				}
			})
		}
	})
	r.Run(t)

	if oks+sheds != nClients {
		t.Fatalf("oks=%d sheds=%d, want %d total", oks, sheds, nClients)
	}
	if sheds < 8 || oks < 2 {
		t.Fatalf("oks=%d sheds=%d: burst did not overflow the 4-deep queue as scripted", oks, sheds)
	}
	if n := reg.Counter("qos.osd1.shed").Value(); n != int64(sheds) {
		t.Fatalf("qos shed counter %d, clients saw %d ErrOverload", n, sheds)
	}
	if n := srv.Admission().Len(); n != 0 {
		t.Fatalf("admission queue not drained: %d", n)
	}
}

// TestQoSBreakerFlappingChaos: a storage server flaps (crash, restart,
// crash, restart) under a steady writer that fails over to a second
// server. The breaker must open on the first timeouts, convert the rest of
// each outage into zero-wait fast-fails (instead of ~40 full retry
// timeouts), and close again via a half-open probe once the server is
// back. Runs in the chaos seed matrix; the seed varies retry jitter.
func TestQoSBreakerFlappingChaos(t *testing.T) {
	const (
		iters = 200
		wsize = 64 << 10
	)
	seed := testrig.SeedFromEnv(1)
	retry := portals.RetryPolicy{
		MaxAttempts: 2,
		Timeout:     5 * time.Millisecond,
		Backoff:     500 * time.Microsecond,
		MaxBackoff:  time.Millisecond,
		Jitter:      100 * time.Microsecond,
	}
	pol := qos.BreakerPolicy{Threshold: 2, Cooldown: 10 * time.Millisecond, MaxCooldown: 40 * time.Millisecond}

	r := testrig.New(4)
	srvA := r.StorageServer(1, storage.DefaultConfig())
	srvB := r.StorageServer(2, storage.DefaultConfig())

	caller := r.Caller(3)
	caller.SetRetry(retry, sim.NewRand(seed))
	brk := qos.NewBreakerFor(r.Eps[3], pol)
	caller.SetBreaker(brk)
	sc := storage.NewClient(caller)

	log := testrig.RunChaos(r.K,
		testrig.ChaosEvent{At: 20 * time.Millisecond, Name: "crashA", Do: func(p *sim.Proc) { srvA.Crash() }},
		testrig.ChaosEvent{At: 70 * time.Millisecond, Name: "restartA", Do: func(p *sim.Proc) {
			if _, err := srvA.Restart(p); err != nil {
				t.Errorf("restart: %v", err)
			}
		}},
		testrig.ChaosEvent{At: 120 * time.Millisecond, Name: "crashA2", Do: func(p *sim.Proc) { srvA.Crash() }},
		testrig.ChaosEvent{At: 170 * time.Millisecond, Name: "restartA2", Do: func(p *sim.Proc) {
			if _, err := srvA.Restart(p); err != nil {
				t.Errorf("restart: %v", err)
			}
		}},
	)

	var timeouts, fastRoutes, rerouted int
	r.Go("writer", func(p *sim.Proc) {
		s := newTenantSession(t, p, r, 3, "alice", srvA)
		refB, err := sc.Create(p, storage.Target{Node: srvB.Node(), Port: srvB.RPCPort()}, s.caps[authz.OpCreate], s.cid)
		if err != nil {
			t.Fatalf("create B: %v", err)
		}
		for i := 0; i < iters; i++ {
			start := p.Now()
			_, err := sc.Write(p, s.ref, s.caps[authz.OpWrite], 0, netsim.SyntheticPayload(wsize))
			elapsed := p.Now().Sub(start)
			if err != nil {
				switch {
				case errors.Is(err, portals.ErrCircuitOpen):
					if elapsed == 0 {
						fastRoutes++ // refused with ZERO wait — the point
					}
				case errors.Is(err, portals.ErrRPCTimeout):
					timeouts++
				default:
					t.Fatalf("iter %d: unexpected error %v", i, err)
				}
				// Route around: the healthy server must absorb the write.
				if _, err := sc.Write(p, refB, s.caps[authz.OpWrite], 0, netsim.SyntheticPayload(wsize)); err != nil {
					t.Fatalf("iter %d: failover write: %v", i, err)
				}
				rerouted++
			}
			p.Sleep(time.Millisecond)
		}
		// Recovery: keep probing until the breaker closes and A serves
		// again (bounded by sim.MaxTime only through the iteration cap).
		for i := 0; i < 200; i++ {
			if _, err := sc.Write(p, s.ref, s.caps[authz.OpWrite], 0, netsim.SyntheticPayload(wsize)); err == nil {
				break
			}
			p.Sleep(5 * time.Millisecond)
		}
		if h := brk.HealthOf(srvA.Node(), srvA.RPCPort()); h != qos.Ok {
			t.Errorf("final health of A: %v, want ok", h)
		}
	})
	r.Run(t)

	if len(log.Events) != 4 {
		t.Fatalf("chaos schedule ran %d events, want 4: %v", len(log.Events), log.Events)
	}
	if brk.Opens() < 2 {
		t.Errorf("breaker opened %d times across two outages, want >= 2", brk.Opens())
	}
	if brk.Closes() < 1 {
		t.Errorf("breaker never closed after recovery")
	}
	if brk.FastFails() < 1 || fastRoutes < 1 {
		t.Errorf("no zero-wait fast-fails (counter=%d, observed=%d)", brk.FastFails(), fastRoutes)
	}
	if rerouted < 10 {
		t.Errorf("only %d writes rerouted during ~100ms of outage", rerouted)
	}
	// The outages cover ~50 writer iterations. Without a breaker each
	// would burn the full 2x5ms retry budget; with it, only the opening
	// failures and the half-open probes may wait out a timeout.
	if timeouts > 12 {
		t.Errorf("%d full-timeout waits, want <= 12 (breaker should fast-fail the rest)", timeouts)
	}
}
