package qos

import (
	"errors"
	"time"

	"lwfs/internal/metrics"
	"lwfs/internal/netsim"
	"lwfs/internal/portals"
	"lwfs/internal/sim"
)

// Health is the client's opinion of one (node, portal) service, derived
// from its circuit state. Failover and fan-out paths consult it to order
// candidates: Ok first, Degraded next, Down last (or skipped).
type Health int

const (
	Ok       Health = iota // circuit closed, no recent failures
	Degraded               // closed with recent failures, or probing half-open
	Down                   // circuit open: fast-fail until the cooldown passes
)

func (h Health) String() string {
	switch h {
	case Ok:
		return "ok"
	case Degraded:
		return "degraded"
	default:
		return "down"
	}
}

// BreakerPolicy parameterizes the circuit state machine. Zero value fields
// take defaults.
type BreakerPolicy struct {
	// Threshold is the consecutive-failure count that opens the circuit.
	// Default 3.
	Threshold int

	// Cooldown is how long an open circuit fast-fails before admitting a
	// single half-open probe. Doubles on every failed probe up to
	// MaxCooldown. Defaults: 250ms / 2s.
	Cooldown    time.Duration
	MaxCooldown time.Duration
}

func (p BreakerPolicy) withDefaults() BreakerPolicy {
	if p.Threshold <= 0 {
		p.Threshold = 3
	}
	if p.Cooldown <= 0 {
		p.Cooldown = 250 * time.Millisecond
	}
	if p.MaxCooldown <= 0 {
		p.MaxCooldown = 2 * time.Second
	}
	return p
}

const (
	stClosed = iota
	stOpen
	stHalfOpen
)

// circuit is the per-(node, portal) state.
type circuit struct {
	state    int
	fails    int // consecutive failures while closed
	openedAt sim.Time
	cooldown time.Duration
	probing  bool // a half-open probe is in flight; hold other callers back
}

type bkey struct {
	node netsim.NodeID
	pt   portals.Index
}

// Breaker is a client-side circuit breaker implementing portals.Breaker,
// with one circuit per (target node, portal index). Consecutive timeouts or
// overload sheds open the circuit; while open every attempt fast-fails with
// portals.ErrCircuitOpen (zero wait) until the cooldown admits one half-open
// probe, whose outcome closes or re-opens (with doubled cooldown).
//
// Failures are ONLY timeouts and overloads — an error answer like
// ErrNoObject proves the server is alive and resets the streak.
//
// Like everything in the sim, a Breaker runs on the single logical thread;
// it may be shared by every caller on a node (and is, in core.Client).
type Breaker struct {
	k   *sim.Kernel
	pol BreakerPolicy
	m   map[bkey]*circuit

	opens     *metrics.Counter
	closes    *metrics.Counter
	fastFails *metrics.Counter
}

// NewBreaker builds a breaker registering `opens`, `closes` (state
// transitions) and `fast_fails` (attempts refused while open) under scope.
func NewBreaker(k *sim.Kernel, scope metrics.Scope, pol BreakerPolicy) *Breaker {
	return &Breaker{
		k:         k,
		pol:       pol.withDefaults(),
		m:         make(map[bkey]*circuit),
		opens:     scope.Counter("opens"),
		closes:    scope.Counter("closes"),
		fastFails: scope.Counter("fast_fails"),
	}
}

// NewBreakerFor is NewBreaker scoped under `qos.breaker.<node-name>` of
// ep's registry — the conventional placement for a per-client breaker.
func NewBreakerFor(ep *portals.Endpoint, pol BreakerPolicy) *Breaker {
	return NewBreaker(ep.Kernel(), ep.Metrics().Scope("qos").Scope("breaker").Scope(ep.NodeName()), pol)
}

func (b *Breaker) circ(target netsim.NodeID, pt portals.Index) *circuit {
	k := bkey{node: target, pt: pt}
	c, ok := b.m[k]
	if !ok {
		c = &circuit{state: stClosed}
		b.m[k] = c
	}
	return c
}

// Allow implements portals.Breaker: may an attempt go out right now?
func (b *Breaker) Allow(target netsim.NodeID, pt portals.Index) bool {
	c := b.circ(target, pt)
	switch c.state {
	case stClosed:
		return true
	case stOpen:
		if b.k.Now().Sub(c.openedAt) >= c.cooldown {
			c.state = stHalfOpen
			c.probing = true
			return true // this caller is the probe
		}
		b.fastFails.Inc()
		return false
	default: // half-open
		if c.probing {
			b.fastFails.Inc()
			return false // one probe at a time
		}
		c.probing = true
		return true
	}
}

// Record implements portals.Breaker: feed an attempt's outcome back.
func (b *Breaker) Record(target netsim.NodeID, pt portals.Index, err error) {
	c := b.circ(target, pt)
	failure := err != nil && (errors.Is(err, portals.ErrRPCTimeout) || errors.Is(err, portals.ErrOverload))
	switch c.state {
	case stClosed:
		if !failure {
			c.fails = 0
			return
		}
		c.fails++
		if c.fails >= b.pol.Threshold {
			c.state = stOpen
			c.openedAt = b.k.Now()
			c.cooldown = b.pol.Cooldown
			b.opens.Inc()
		}
	case stHalfOpen:
		c.probing = false
		if failure {
			// Probe failed: back to open, exponentially longer.
			c.state = stOpen
			c.openedAt = b.k.Now()
			c.cooldown = 2 * c.cooldown
			if c.cooldown > b.pol.MaxCooldown {
				c.cooldown = b.pol.MaxCooldown
			}
			return
		}
		c.state = stClosed
		c.fails = 0
		b.closes.Inc()
	case stOpen:
		// A straggler attempt that was in flight when the circuit
		// opened; its outcome adds nothing.
	}
}

// HealthOf reports the current health of (target, pt). An open circuit past
// its cooldown still reads Down until some caller actually probes it.
func (b *Breaker) HealthOf(target netsim.NodeID, pt portals.Index) Health {
	c, ok := b.m[bkey{node: target, pt: pt}]
	if !ok {
		return Ok
	}
	switch c.state {
	case stOpen:
		return Down
	case stHalfOpen:
		return Degraded
	default:
		if c.fails > 0 {
			return Degraded
		}
		return Ok
	}
}

// Opens, Closes and FastFails are thin reads of the registered counters.
func (b *Breaker) Opens() int64     { return b.opens.Value() }
func (b *Breaker) Closes() int64    { return b.closes.Value() }
func (b *Breaker) FastFails() int64 { return b.fastFails.Value() }
