package qos_test

import (
	"errors"
	"testing"
	"time"

	"lwfs/internal/metrics"
	"lwfs/internal/netsim"
	"lwfs/internal/portals"
	"lwfs/internal/qos"
	"lwfs/internal/sim"
)

// req is a fake Classified request body.
type req struct {
	tenant uint64
	bytes  int64
}

func (r req) QoSTenant() (uint64, int64) { return r.tenant, r.bytes }

const kb = 1 << 10

// rig is the unit-test harness: a bare kernel, a registry on its clock, and
// an admission controller under scope "qos.t".
type admRig struct {
	k   *sim.Kernel
	reg *metrics.Registry
	a   *qos.Admission
}

func newAdmRig(cfg qos.Config) *admRig {
	k := sim.NewKernel()
	reg := metrics.NewRegistry(k.Now)
	return &admRig{k: k, reg: reg, a: qos.NewAdmission(k, reg.Scope("qos").Scope("t"), cfg)}
}

func (r *admRig) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	r.k.Spawn("test", fn)
	if err := r.k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
}

func submit(t *testing.T, a *qos.Admission, class uint8, tenant uint64, bytes int64) {
	t.Helper()
	if err := a.Submit(portals.Delivery{Class: class, Body: req{tenant: tenant, bytes: bytes}}); err != nil {
		t.Fatalf("submit tenant %d: %v", tenant, err)
	}
}

// TestQoSDRRFairness: two equal-weight tenants, one of which submitted its
// whole backlog first, must receive byte-equal service over every prefix of
// the dispatch sequence (within one quantum plus one max request) — the
// point of DRR over FIFO.
func TestQoSDRRFairness(t *testing.T) {
	const (
		quantum = 64 * kb
		reqSize = 128 * kb
		nReqs   = 40
	)
	r := newAdmRig(qos.Config{MaxQueue: 1024, Quantum: quantum})
	r.run(t, func(p *sim.Proc) {
		// Worst case for fairness: tenant 1's entire backlog queued before
		// tenant 2's first request.
		for i := 0; i < nReqs; i++ {
			submit(t, r.a, qos.ClassForeground, 1, reqSize)
		}
		for i := 0; i < nReqs; i++ {
			submit(t, r.a, qos.ClassForeground, 2, reqSize)
		}
		got := map[uint64]int64{}
		bound := int64(quantum + reqSize)
		for i := 0; i < 2*nReqs; i++ {
			d := r.a.Next(p)
			rq := d.Body.(req)
			got[rq.tenant] += rq.bytes
			bothBacklogged := got[1] < nReqs*reqSize && got[2] < nReqs*reqSize
			if diff := got[1] - got[2]; bothBacklogged && (diff > bound || diff < -bound) {
				t.Fatalf("after %d dispatches service skew %d bytes exceeds quantum+maxreq %d", i+1, diff, bound)
			}
		}
		if r.a.Len() != 0 {
			t.Fatalf("queue not drained: %d left", r.a.Len())
		}
	})
}

// TestQoSWeightedShares: a weight-3 tenant gets ~3x the bytes of a weight-1
// tenant while both are backlogged.
func TestQoSWeightedShares(t *testing.T) {
	const (
		reqSize = 128 * kb
		nReqs   = 40
	)
	r := newAdmRig(qos.Config{
		MaxQueue: 1024,
		Quantum:  64 * kb,
		Weights:  map[qos.Tenant]float64{1: 3, 2: 1},
	})
	r.run(t, func(p *sim.Proc) {
		for i := 0; i < nReqs; i++ {
			submit(t, r.a, qos.ClassForeground, 1, reqSize)
			submit(t, r.a, qos.ClassForeground, 2, reqSize)
		}
		// Dispatch half the total; both tenants stay backlogged throughout
		// (tenant 1 can take at most 40 of the 40 dispatches).
		got := map[uint64]int64{}
		for i := 0; i < nReqs; i++ {
			rq := r.a.Next(p).Body.(req)
			got[rq.tenant] += rq.bytes
		}
		if got[2] == 0 {
			t.Fatal("weight-1 tenant starved outright")
		}
		ratio := float64(got[1]) / float64(got[2])
		if ratio < 2.2 || ratio > 4.2 {
			t.Fatalf("service ratio %.2f, want ~3 (got1=%d got2=%d)", ratio, got[1], got[2])
		}
	})
}

// TestQoSPriorityLane: foreground requests submitted AFTER a queued
// background backlog are all dispatched before any background request.
func TestQoSPriorityLane(t *testing.T) {
	r := newAdmRig(qos.Config{MaxQueue: 64})
	r.run(t, func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			submit(t, r.a, qos.ClassBackground, 5, 64*kb)
		}
		for i := 0; i < 10; i++ {
			submit(t, r.a, qos.ClassForeground, 6, 64*kb)
		}
		for i := 0; i < 10; i++ {
			if d := r.a.Next(p); d.Class != qos.ClassForeground {
				t.Fatalf("dispatch %d: class %d before foreground drained", i, d.Class)
			}
		}
		for i := 0; i < 10; i++ {
			if d := r.a.Next(p); d.Class != qos.ClassBackground {
				t.Fatalf("background dispatch %d: class %d", i, d.Class)
			}
		}
	})
}

// TestQoSOverloadShed: submissions beyond MaxQueue fail with ErrOverload and
// are counted, and the queue itself still drains intact.
func TestQoSOverloadShed(t *testing.T) {
	r := newAdmRig(qos.Config{MaxQueue: 4})
	r.run(t, func(p *sim.Proc) {
		var shed int
		for i := 0; i < 6; i++ {
			err := r.a.Submit(portals.Delivery{Body: req{tenant: 9, bytes: 32 * kb}})
			if err != nil {
				if !errors.Is(err, portals.ErrOverload) {
					t.Fatalf("submit %d: %v, want ErrOverload", i, err)
				}
				shed++
			}
		}
		if shed != 2 {
			t.Fatalf("shed %d submissions, want 2", shed)
		}
		if n := r.reg.Counter("qos.t.shed").Value(); n != 2 {
			t.Fatalf("shed counter %d, want 2", n)
		}
		if n := r.reg.Counter("qos.t.tenant.9.shed_bytes").Value(); n != 2*32*kb {
			t.Fatalf("tenant shed_bytes %d, want %d", n, 2*32*kb)
		}
		for i := 0; i < 4; i++ {
			r.a.Next(p)
		}
		if r.a.Len() != 0 {
			t.Fatalf("queue not drained: %d left", r.a.Len())
		}
		if n := r.reg.Counter("qos.t.admitted").Value(); n != 4 {
			t.Fatalf("admitted %d, want 4", n)
		}
	})
}

// TestQoSControlOpMinCost: zero-byte control ops are charged the nominal
// minimum, so splitting work into many tiny ops cannot dodge fair-share
// accounting.
func TestQoSControlOpMinCost(t *testing.T) {
	r := newAdmRig(qos.Config{MaxQueue: 64})
	r.run(t, func(p *sim.Proc) {
		submit(t, r.a, qos.ClassForeground, 3, 0)
		r.a.Next(p)
		if n := r.reg.Counter("qos.t.tenant.3.admitted_bytes").Value(); n != kb {
			t.Fatalf("control op accounted %d bytes, want min cost %d", n, kb)
		}
	})
}

// TestQoSTokenBucketPacing: with TenantBps set, a tenant's dispatch rate is
// held to its configured byte rate in virtual time (charge-negative bucket:
// first request free, each subsequent one waits out the previous debt).
func TestQoSTokenBucketPacing(t *testing.T) {
	const (
		reqSize = 256 * kb
		nReqs   = 8
		bps     = float64(1 << 20) // 1 MiB/s
	)
	r := newAdmRig(qos.Config{MaxQueue: 64, Quantum: 1 << 20, TenantBps: bps})
	r.run(t, func(p *sim.Proc) {
		for i := 0; i < nReqs; i++ {
			submit(t, r.a, qos.ClassForeground, 1, reqSize)
		}
		start := p.Now()
		for i := 0; i < nReqs; i++ {
			r.a.Next(p)
		}
		elapsed := p.Now().Sub(start)
		// 7 repayments of 256 KiB at 1 MiB/s = 1.75 s.
		want := 1750 * time.Millisecond
		if elapsed < want-50*time.Millisecond || elapsed > want+200*time.Millisecond {
			t.Fatalf("8x256KiB at 1MiB/s took %v, want ~%v", elapsed, want)
		}
	})
}

// TestQoSClear: Clear drops everything queued, reports the count, resets
// depth, and the controller keeps working afterwards.
func TestQoSClear(t *testing.T) {
	r := newAdmRig(qos.Config{MaxQueue: 64})
	r.run(t, func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			submit(t, r.a, qos.ClassForeground, 1, 64*kb)
		}
		if n := r.a.Clear(); n != 5 {
			t.Fatalf("Clear dropped %d, want 5", n)
		}
		if r.a.Len() != 0 {
			t.Fatalf("Len %d after Clear", r.a.Len())
		}
		submit(t, r.a, qos.ClassForeground, 2, 32*kb)
		if rq := r.a.Next(p).Body.(req); rq.tenant != 2 {
			t.Fatalf("post-Clear dispatch tenant %d, want 2", rq.tenant)
		}
	})
}

// --- Breaker ---

type brkRig struct {
	k   *sim.Kernel
	reg *metrics.Registry
	b   *qos.Breaker
}

func newBrkRig(pol qos.BreakerPolicy) *brkRig {
	k := sim.NewKernel()
	reg := metrics.NewRegistry(k.Now)
	return &brkRig{k: k, reg: reg, b: qos.NewBreaker(k, reg.Scope("qos").Scope("breaker"), pol)}
}

func (r *brkRig) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	r.k.Spawn("test", fn)
	if err := r.k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
}

const (
	brkNode = netsim.NodeID(7)
	brkPt   = portals.Index(9)
)

// TestBreakerLifecycle walks the full state machine: closed -> open after
// Threshold consecutive timeouts -> fast-fail while cooling -> half-open
// single probe -> re-open with doubled cooldown on probe failure -> closed
// on probe success.
func TestBreakerLifecycle(t *testing.T) {
	pol := qos.BreakerPolicy{Threshold: 2, Cooldown: 10 * time.Millisecond, MaxCooldown: 40 * time.Millisecond}
	r := newBrkRig(pol)
	r.run(t, func(p *sim.Proc) {
		b := r.b
		if !b.Allow(brkNode, brkPt) || b.HealthOf(brkNode, brkPt) != qos.Ok {
			t.Fatal("fresh circuit not closed/ok")
		}
		b.Record(brkNode, brkPt, portals.ErrRPCTimeout)
		if h := b.HealthOf(brkNode, brkPt); h != qos.Degraded {
			t.Fatalf("one failure: health %v, want degraded", h)
		}
		b.Record(brkNode, brkPt, portals.ErrRPCTimeout)
		if b.Opens() != 1 || b.HealthOf(brkNode, brkPt) != qos.Down {
			t.Fatalf("opens=%d health=%v after threshold, want 1/down", b.Opens(), b.HealthOf(brkNode, brkPt))
		}
		if b.Allow(brkNode, brkPt) {
			t.Fatal("open circuit allowed an attempt inside cooldown")
		}
		if b.FastFails() != 1 {
			t.Fatalf("fast_fails %d, want 1", b.FastFails())
		}

		// Cooldown expires: exactly one probe goes out; it fails, so the
		// circuit re-opens with a doubled cooldown.
		p.Sleep(pol.Cooldown)
		if !b.Allow(brkNode, brkPt) {
			t.Fatal("no probe admitted after cooldown")
		}
		if b.Allow(brkNode, brkPt) {
			t.Fatal("second concurrent probe admitted")
		}
		b.Record(brkNode, brkPt, portals.ErrOverload) // overload counts as failure
		if b.HealthOf(brkNode, brkPt) != qos.Down {
			t.Fatal("failed probe did not re-open")
		}
		p.Sleep(pol.Cooldown) // old cooldown: not enough now
		if b.Allow(brkNode, brkPt) {
			t.Fatal("re-opened circuit honored the un-doubled cooldown")
		}
		p.Sleep(pol.Cooldown) // 2x total: doubled cooldown has passed
		if !b.Allow(brkNode, brkPt) {
			t.Fatal("no probe after doubled cooldown")
		}
		b.Record(brkNode, brkPt, nil)
		if b.Closes() != 1 || b.HealthOf(brkNode, brkPt) != qos.Ok {
			t.Fatalf("closes=%d health=%v after good probe, want 1/ok", b.Closes(), b.HealthOf(brkNode, brkPt))
		}
		if !b.Allow(brkNode, brkPt) {
			t.Fatal("closed circuit refused an attempt")
		}
	})
}

// TestBreakerApplicationErrorsReset: an error ANSWER (the server is alive)
// resets the consecutive-failure streak; only timeouts and overloads count.
func TestBreakerApplicationErrorsReset(t *testing.T) {
	r := newBrkRig(qos.BreakerPolicy{Threshold: 2})
	r.run(t, func(p *sim.Proc) {
		b := r.b
		b.Record(brkNode, brkPt, portals.ErrRPCTimeout)
		b.Record(brkNode, brkPt, errors.New("no such object")) // resets streak
		b.Record(brkNode, brkPt, portals.ErrRPCTimeout)
		if b.Opens() != 0 {
			t.Fatalf("opens=%d: application error did not reset the streak", b.Opens())
		}
		if h := b.HealthOf(brkNode, brkPt); h != qos.Degraded {
			t.Fatalf("health %v with one recent failure, want degraded", h)
		}
		b.Record(brkNode, brkPt, nil)
		if h := b.HealthOf(brkNode, brkPt); h != qos.Ok {
			t.Fatalf("health %v after success, want ok", h)
		}
	})
}

// TestBreakerCircuitsAreIndependent: opening (node A, portal X) must not
// affect other nodes or other portals on the same node.
func TestBreakerCircuitsAreIndependent(t *testing.T) {
	r := newBrkRig(qos.BreakerPolicy{Threshold: 1})
	r.run(t, func(p *sim.Proc) {
		b := r.b
		b.Record(brkNode, brkPt, portals.ErrRPCTimeout)
		if b.HealthOf(brkNode, brkPt) != qos.Down {
			t.Fatal("threshold-1 circuit not open after one timeout")
		}
		if b.HealthOf(brkNode, brkPt+1) != qos.Ok || b.HealthOf(brkNode+1, brkPt) != qos.Ok {
			t.Fatal("unrelated circuits affected")
		}
		if !b.Allow(brkNode, brkPt+1) || !b.Allow(brkNode+1, brkPt) {
			t.Fatal("unrelated circuits refused attempts")
		}
	})
}
