// Package qos is the multi-tenant quality-of-service layer: server-side
// admission control (deficit-round-robin fair queues per tenant, byte-rate
// token buckets, bounded depth with explicit shed, a strict-priority lane for
// foreground traffic) and client-side circuit breakers with per-endpoint
// health states.
//
// The paper's design pushes policy out of the storage servers; qos is where
// the policy that CANNOT live anywhere else goes — arbitration between
// mutually distrustful tenants has to happen where their requests meet, on
// the server, and overload signalling has to happen before a request ages
// into a timeout. Tenant identity already rides on every request via the
// capability's container (internal/authz), so admission keys on that.
//
// Admission implements portals.Dispatcher and plugs in behind any RPC server
// (storage, burst) via Server.SetDispatcher. Breaker implements
// portals.Breaker and arms any Caller via Caller.SetBreaker.
package qos

import (
	"fmt"
	"time"

	"lwfs/internal/metrics"
	"lwfs/internal/portals"
	"lwfs/internal/sim"
)

// Tenant identifies the paying party behind a request — the capability's
// container ID on storage/burst requests. Tenant 0 is the "unclassified"
// bucket for requests that carry no identity (admin control ops).
type Tenant uint64

// Scheduling classes, stamped on requests by Caller.SetClass. Foreground is
// the zero value so unclassified traffic competes at interactive priority;
// background (burst drain batches) runs only when no foreground work is
// dispatchable.
const (
	ClassForeground uint8 = 0
	ClassBackground uint8 = 1
)

// Classified is implemented by request body types that can identify their
// tenant and wire cost. It is structural on purpose: request types in
// internal/storage and internal/burst implement it without importing qos,
// and qos classifies them without importing their packages.
type Classified interface {
	QoSTenant() (tenant uint64, bytes int64)
}

// Config parameterizes an admission controller. The zero value is usable:
// defaults are filled in by NewAdmission.
type Config struct {
	// MaxQueue bounds total queued requests (all tenants, both classes).
	// Submissions beyond it are shed with portals.ErrOverload. Default 256.
	MaxQueue int

	// Quantum is the DRR quantum in bytes — how much service credit a
	// tenant earns per round-robin visit. A tenant with weight w earns
	// w×Quantum. Default 256 KiB (a quarter of the 1 MiB chunk size, so
	// one bulk write needs a few rounds and small ops interleave).
	Quantum int64

	// TenantBps caps each tenant's long-term admitted byte rate at
	// weight×TenantBps (token bucket). 0 disables rate capping — DRR
	// fairness alone arbitrates, and the system stays work-conserving.
	TenantBps float64

	// Weights assigns relative shares; tenants not listed get 1.0.
	Weights map[Tenant]float64
}

func (c Config) withDefaults() Config {
	if c.MaxQueue <= 0 {
		c.MaxQueue = 256
	}
	if c.Quantum <= 0 {
		c.Quantum = 256 << 10
	}
	return c
}

// minCost is the accounted cost of a request that carries no byte count
// (control ops: stat, sync, list...). Charging them a nominal cost keeps a
// tenant from dodging its share by splitting work into many tiny ops.
const minCost = 1 << 10

// entry is one queued delivery with its accounted cost.
type entry struct {
	d    portals.Delivery
	cost int64
}

// tq is one tenant's FIFO within one priority band, plus its DRR and
// token-bucket state.
type tq struct {
	tenant Tenant
	weight float64
	q      []entry

	// DRR: deficit accumulates quantum×weight once per round-visit
	// (granted marks that this visit's quantum has been credited, so a
	// tenant that keeps dispatching from the head of the ring cannot earn
	// more than one quantum per visit).
	deficit int64
	granted bool

	// Token bucket, charge-negative form: tokens never exceed 0, each
	// dispatch subtracts its cost, refill at weight×TenantBps climbs back
	// toward 0. Eligible iff tokens >= 0 — so a tenant can overdraw by at
	// most one request, then waits out the debt. No banked bursts.
	tokens     float64
	lastRefill sim.Time

	admittedBytes *metrics.Counter
	shedBytes     *metrics.Counter
}

// band is one strict-priority level: a DRR ring of active tenant queues.
type band struct {
	active  []*tq // round-robin ring; [0] is the current head
	tenants map[Tenant]*tq
}

// Admission is a portals.Dispatcher enforcing per-tenant fair shares.
// Foreground (class 0) requests strictly preempt background (class 1+):
// the background band is scanned only when no foreground request is
// dispatchable. Within a band, tenants share by deficit round-robin over
// accounted bytes; optional token buckets cap each tenant's absolute rate.
//
// All methods run on the simulation's single logical thread (portals
// workers and the intake daemon are sim procs), so no locking.
type Admission struct {
	k     *sim.Kernel
	cfg   Config
	scope metrics.Scope

	wake   *sim.Mailbox // one token per queued delivery; workers block here
	bands  [2]*band
	queued int

	admitted      *metrics.Counter
	admittedBytes *metrics.Counter
	shedTotal     *metrics.Counter
	shedBytes     *metrics.Counter
}

// NewAdmission builds an admission controller registering instruments under
// scope (conventionally `qos.<server-name>`): admitted, admitted_bytes,
// shed, shed_bytes, queue_depth, and per-tenant
// `tenant.<id>.{admitted_bytes,shed_bytes,queue_depth}`.
func NewAdmission(k *sim.Kernel, scope metrics.Scope, cfg Config) *Admission {
	a := &Admission{
		k:     k,
		cfg:   cfg.withDefaults(),
		scope: scope,
		wake:  sim.NewMailbox(k, "qos/wake"),

		admitted:      scope.Counter("admitted"),
		admittedBytes: scope.Counter("admitted_bytes"),
		shedTotal:     scope.Counter("shed"),
		shedBytes:     scope.Counter("shed_bytes"),
	}
	for i := range a.bands {
		a.bands[i] = &band{tenants: make(map[Tenant]*tq)}
	}
	scope.GaugeFunc("queue_depth", func() int64 { return int64(a.queued) })
	return a
}

// SetWeight adjusts a tenant's share weight at runtime (w <= 0 resets to 1).
func (a *Admission) SetWeight(t Tenant, w float64) {
	if a.cfg.Weights == nil {
		a.cfg.Weights = make(map[Tenant]float64)
	}
	if w <= 0 {
		w = 1
	}
	a.cfg.Weights[t] = w
	for _, b := range a.bands {
		if q, ok := b.tenants[t]; ok {
			q.weight = w
		}
	}
}

func (a *Admission) weightOf(t Tenant) float64 {
	if w, ok := a.cfg.Weights[t]; ok && w > 0 {
		return w
	}
	return 1
}

// classify extracts (tenant, cost) from a delivery body.
func classify(d portals.Delivery) (Tenant, int64) {
	var t Tenant
	var cost int64 = minCost
	if c, ok := d.Body.(Classified); ok {
		tenant, bytes := c.QoSTenant()
		t = Tenant(tenant)
		if bytes > cost {
			cost = bytes
		}
	}
	return t, cost
}

func (a *Admission) tenantScope(t Tenant) metrics.Scope {
	return a.scope.Scope("tenant").Scope(fmt.Sprintf("%d", t))
}

func (a *Admission) bandFor(class uint8) *band {
	if class >= ClassBackground {
		return a.bands[1]
	}
	return a.bands[0]
}

func (a *Admission) tqFor(b *band, t Tenant) *tq {
	q, ok := b.tenants[t]
	if !ok {
		ts := a.tenantScope(t)
		q = &tq{
			tenant:        t,
			weight:        a.weightOf(t),
			lastRefill:    a.k.Now(),
			admittedBytes: ts.Counter("admitted_bytes"),
			shedBytes:     ts.Counter("shed_bytes"),
		}
		qq := q
		ts.GaugeFunc("queue_depth", func() int64 { return int64(len(qq.q)) })
		b.tenants[t] = q
	}
	return q
}

// Submit implements portals.Dispatcher: admit or shed.
func (a *Admission) Submit(d portals.Delivery) error {
	t, cost := classify(d)
	if a.queued >= a.cfg.MaxQueue {
		a.shedTotal.Inc()
		a.shedBytes.Add(cost)
		a.tqFor(a.bandFor(d.Class), t).shedBytes.Add(cost)
		return portals.ErrOverload
	}
	b := a.bandFor(d.Class)
	q := a.tqFor(b, t)
	if len(q.q) == 0 {
		b.active = append(b.active, q)
	}
	q.q = append(q.q, entry{d: d, cost: cost})
	a.queued++
	a.wake.Send(struct{}{})
	return nil
}

// Next implements portals.Dispatcher: block until a delivery is
// dispatchable under the fair-share and rate policy, and return it.
func (a *Admission) Next(p *sim.Proc) portals.Delivery {
	for {
		a.wake.Recv(p)
		for {
			if a.queued == 0 {
				// Orphaned wake token (Clear raced a sleeping worker):
				// nothing to dispatch, go back to waiting.
				break
			}
			d, ok, wait := a.pick()
			if ok {
				return d
			}
			// Everything queued is rate-limited; sleep until the
			// earliest bucket refills and retry with the same token.
			if wait <= 0 {
				wait = time.Millisecond
			}
			p.Sleep(wait)
		}
	}
}

// pick runs one strict-priority + DRR selection pass. Returns the chosen
// delivery, or (ok=false, wait>0) if every queued tenant is bucket-blocked —
// wait is the shortest time until one becomes eligible.
func (a *Admission) pick() (portals.Delivery, bool, time.Duration) {
	now := a.k.Now()
	minWait := time.Duration(0)
	for _, b := range a.bands {
		if len(b.active) == 0 {
			continue
		}
		// DRR over the active ring. Terminates: each full lap either
		// dispatches, or every tenant is bucket-blocked (we bail with a
		// wait hint), or deficits grew by a quantum — and lapsNeeded is
		// bounded by maxCost/quantum.
		blocked := 0
		for scanned := 0; len(b.active) > 0; {
			q := b.active[0]
			if w := q.refillWait(now, a.cfg.TenantBps); w > 0 {
				// Rate-capped: rotate without granting a quantum.
				if minWait == 0 || w < minWait {
					minWait = w
				}
				b.rotate()
				blocked++
				scanned++
				if scanned >= len(b.active) && blocked >= len(b.active) {
					break // whole band is bucket-blocked
				}
				continue
			}
			if !q.granted {
				q.deficit += int64(float64(a.cfg.Quantum) * q.weight)
				q.granted = true
			}
			head := q.q[0]
			if q.deficit >= head.cost {
				return a.dispatch(b, q, head), true, 0
			}
			// Not enough credit this visit; back of the ring, and the
			// next visit grants a fresh quantum.
			q.granted = false
			b.rotate()
			scanned++
			blocked = 0
			continue
		}
	}
	return portals.Delivery{}, false, minWait
}

// dispatch pops the head of q, charges DRR deficit and the token bucket,
// and updates accounting. q stays at the head of the ring while its deficit
// covers more work (granted stays true: no extra quantum for staying).
func (a *Admission) dispatch(b *band, q *tq, head entry) portals.Delivery {
	q.q = q.q[1:]
	q.deficit -= head.cost
	if a.cfg.TenantBps > 0 {
		q.tokens -= float64(head.cost)
	}
	a.queued--
	a.admitted.Inc()
	a.admittedBytes.Add(head.cost)
	q.admittedBytes.Add(head.cost)
	if len(q.q) == 0 {
		// Empty queues leave the ring and forfeit their deficit — an
		// idle tenant must not bank credit against the future.
		q.deficit = 0
		q.granted = false
		b.active = b.active[1:]
	}
	return head.d
}

// refillWait refills q's token bucket up to now and reports how long until
// the tenant is eligible (0 = eligible now).
func (q *tq) refillWait(now sim.Time, bps float64) time.Duration {
	if bps <= 0 {
		return 0
	}
	rate := bps * q.weight
	if now > q.lastRefill {
		q.tokens += rate * now.Sub(q.lastRefill).Seconds()
		if q.tokens > 0 {
			q.tokens = 0
		}
		q.lastRefill = now
	}
	if q.tokens >= 0 {
		return 0
	}
	return time.Duration(-q.tokens / rate * float64(time.Second))
}

func (b *band) rotate() {
	if len(b.active) > 1 {
		b.active = append(b.active[1:], b.active[0])
	}
}

// Len implements portals.Dispatcher.
func (a *Admission) Len() int { return a.queued }

// Clear implements portals.Dispatcher: drop everything queued (server
// crash) and report how many were dropped.
func (a *Admission) Clear() int {
	n := a.queued
	for i := range a.bands {
		// Empty the dropped queues in place: their queue_depth gauges
		// stay registered until the tenant reappears.
		for _, q := range a.bands[i].tenants {
			q.q = nil
		}
		a.bands[i] = &band{tenants: make(map[Tenant]*tq)}
	}
	a.queued = 0
	for {
		if _, ok := a.wake.TryRecv(); !ok {
			break
		}
	}
	return n
}
