package iocache_test

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"lwfs/internal/authz"
	"lwfs/internal/cluster"
	"lwfs/internal/core"
	"lwfs/internal/iocache"
	"lwfs/internal/netsim"
	"lwfs/internal/sim"
	"lwfs/internal/storage"
)

const kb = 1 << 10
const mb = 1 << 20

type rig struct {
	cl   *cluster.Cluster
	c    *core.Client
	caps core.CapSet
	ref  storage.ObjRef
}

// setup boots a small system and stores an object of the given content
// (nil => synthetic of size).
func setup(t *testing.T, content []byte, size int64, fn func(r *rig, p *sim.Proc)) *rig {
	if t == nil {
		t = new(testing.T) // property tests report via their own bool
	}
	t.Helper()
	spec := cluster.DevCluster().WithServers(2)
	spec.ComputeNodes = 2
	cl := cluster.New(spec)
	cl.RegisterUser("u", "pw")
	l := cl.DeployLWFS()
	r := &rig{cl: cl, c: cl.NewClient(l, 0)}
	cl.Spawn("setup", func(p *sim.Proc) {
		if err := r.c.Login(p, "u", "pw"); err != nil {
			t.Errorf("login: %v", err)
			return
		}
		cid, _ := r.c.CreateContainer(p)
		caps, err := r.c.GetCaps(p, cid, authz.AllOps...)
		if err != nil {
			t.Errorf("caps: %v", err)
			return
		}
		r.caps = caps
		ref, err := r.c.CreateObject(p, r.c.Server(0), caps)
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		r.ref = ref
		payload := netsim.SyntheticPayload(size)
		if content != nil {
			payload = netsim.BytesPayload(content)
		}
		if _, err := r.c.Write(p, ref, caps, 0, payload); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		fn(r, p)
	})
	return r
}

func run(t *testing.T, r *rig) {
	t.Helper()
	if err := r.cl.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCachedReadsMatchDirect(t *testing.T) {
	content := make([]byte, 300*kb)
	rand.New(rand.NewSource(1)).Read(content)
	r := setup(t, content, 0, func(r *rig, p *sim.Proc) {
		rd, err := iocache.NewReader(p, r.c, r.ref, r.caps, iocache.Options{BlockSize: 64 * kb})
		if err != nil {
			t.Errorf("reader: %v", err)
			return
		}
		for _, win := range [][2]int64{{0, 300 * kb}, {10, 1000}, {63 * kb, 2 * kb}, {250 * kb, 100 * kb}} {
			got, err := rd.ReadAt(p, win[0], win[1])
			if err != nil {
				t.Errorf("read %v: %v", win, err)
				return
			}
			end := win[0] + win[1]
			if end > int64(len(content)) {
				end = int64(len(content))
			}
			if !bytes.Equal(got.Data, content[win[0]:end]) {
				t.Errorf("window %v mismatch", win)
				return
			}
		}
	})
	run(t, r)
}

func TestRereadHitsCache(t *testing.T) {
	r := setup(t, nil, 10*mb, func(r *rig, p *sim.Proc) {
		rd, err := iocache.NewReader(p, r.c, r.ref, r.caps, iocache.Options{ReadAhead: -1})
		if err != nil {
			t.Errorf("reader: %v", err)
			return
		}
		if _, err := rd.ReadAt(p, 0, 2*mb); err != nil {
			t.Errorf("read 1: %v", err)
			return
		}
		t0 := p.Now()
		if _, err := rd.ReadAt(p, 0, 2*mb); err != nil {
			t.Errorf("read 2: %v", err)
			return
		}
		if cost := p.Now().Sub(t0); cost > time.Microsecond {
			t.Errorf("cached re-read cost %v", cost)
		}
		hits, misses, _, _ := rd.Stats()
		if misses != 2 || hits != 2 {
			t.Errorf("hits=%d misses=%d", hits, misses)
		}
	})
	run(t, r)
}

func TestSequentialPrefetchCutsLatency(t *testing.T) {
	const size = 32 * mb
	readAll := func(readAhead int) (d time.Duration) {
		r := setup(t, nil, size, func(r *rig, p *sim.Proc) {
			rd, err := iocache.NewReader(p, r.c, r.ref, r.caps, iocache.Options{ReadAhead: readAhead})
			if err != nil {
				t.Errorf("reader: %v", err)
				return
			}
			start := p.Now()
			for off := int64(0); off < size; off += mb {
				if _, err := rd.ReadAt(p, off, mb); err != nil {
					t.Errorf("read: %v", err)
					return
				}
				// Model compute between reads: prefetch overlaps it.
				p.Sleep(5 * time.Millisecond)
			}
			d = p.Now().Sub(start)
		})
		run(t, r)
		return d
	}
	with := readAll(4)
	without := readAll(-1)
	t.Logf("sequential scan: prefetch %v vs none %v", with, without)
	if with >= without {
		t.Fatalf("prefetch did not help: %v vs %v", with, without)
	}
}

func TestLRUEvictionBoundsCache(t *testing.T) {
	r := setup(t, nil, 20*mb, func(r *rig, p *sim.Proc) {
		rd, err := iocache.NewReader(p, r.c, r.ref, r.caps,
			iocache.Options{CapacityBlocks: 4, ReadAhead: -1})
		if err != nil {
			t.Errorf("reader: %v", err)
			return
		}
		for off := int64(0); off < 10*mb; off += mb {
			rd.ReadAt(p, off, mb)
		}
		_, misses, _, evictions := rd.Stats()
		if misses != 10 || evictions != 6 {
			t.Errorf("misses=%d evictions=%d", misses, evictions)
		}
		// Oldest block is gone: re-reading it misses again.
		rd.ReadAt(p, 0, mb)
		_, misses, _, _ = rd.Stats()
		if misses != 11 {
			t.Errorf("expected evicted block to miss: misses=%d", misses)
		}
	})
	run(t, r)
}

func TestReadPastEOF(t *testing.T) {
	r := setup(t, []byte("short"), 0, func(r *rig, p *sim.Proc) {
		rd, err := iocache.NewReader(p, r.c, r.ref, r.caps, iocache.Options{})
		if err != nil {
			t.Errorf("reader: %v", err)
			return
		}
		got, err := rd.ReadAt(p, 3, 100)
		if err != nil || string(got.Data) != "rt" {
			t.Errorf("tail read: %q %v", got.Data, err)
		}
		got, err = rd.ReadAt(p, 100, 10)
		if err != nil || got.Size != 0 {
			t.Errorf("past-eof read: %+v %v", got, err)
		}
	})
	run(t, r)
}

// Property: any schedule of reads through the cache returns exactly what a
// direct read returns.
func TestCacheTransparencyProperty(t *testing.T) {
	prop := func(seed int64) bool {
		content := make([]byte, 100*kb)
		rand.New(rand.NewSource(seed)).Read(content)
		ok := true
		r := setup(nil, content, 0, func(r *rig, p *sim.Proc) {
			rd, err := iocache.NewReader(p, r.c, r.ref, r.caps,
				iocache.Options{BlockSize: 8 * kb, CapacityBlocks: 3})
			if err != nil {
				ok = false
				return
			}
			rng := rand.New(rand.NewSource(seed + 1))
			for i := 0; i < 12; i++ {
				off := int64(rng.Intn(110 * kb))
				n := int64(rng.Intn(30*kb) + 1)
				got, err := rd.ReadAt(p, off, n)
				if err != nil {
					ok = false
					return
				}
				end := off + n
				if end > int64(len(content)) {
					end = int64(len(content))
				}
				if off >= int64(len(content)) {
					if got.Size != 0 {
						ok = false
						return
					}
					continue
				}
				if !bytes.Equal(got.Data, content[off:end]) {
					ok = false
					return
				}
			}
		})
		if err := r.cl.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
