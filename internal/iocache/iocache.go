// Package iocache is a client-side caching and prefetching library for
// LWFS objects — the layer Figure 2 draws *above* the LWFS-core ("caching,
// prefetching, access to datasets, app-specific APIs"). The core
// deliberately ships no caching policy because no policy fits everyone
// (§3); this package is one reasonable policy an application can adopt,
// replace, or ignore:
//
//   - fixed-size block cache with LRU eviction,
//   - sequential-access detection driving asynchronous read-ahead
//     (Kotz/Ellis-style practical prefetching, the paper's reference [20]),
//   - single-flight fetches: concurrent readers of one block share one
//     server round trip.
//
// It is read-only by design: checkpoint-style writers gain nothing from
// write-back caching (§4), and a writer that wants one can build it the
// same way this was built.
package iocache

import (
	"container/list"
	"fmt"

	"lwfs/internal/core"
	"lwfs/internal/metrics"
	"lwfs/internal/netsim"
	"lwfs/internal/sim"
	"lwfs/internal/storage"
)

// Options tune a Reader.
type Options struct {
	BlockSize      int64 // cache block size (default 1 MiB)
	CapacityBlocks int   // cache capacity in blocks (default 32)
	ReadAhead      int   // blocks prefetched past a sequential cursor (default 4)
}

func (o Options) withDefaults() Options {
	if o.BlockSize <= 0 {
		o.BlockSize = 1 << 20
	}
	if o.CapacityBlocks <= 0 {
		o.CapacityBlocks = 32
	}
	if o.ReadAhead < 0 {
		o.ReadAhead = 0
	} else if o.ReadAhead == 0 {
		o.ReadAhead = 4
	}
	return o
}

type block struct {
	idx     int64
	payload netsim.Payload
	elem    *list.Element
}

// Reader caches and prefetches one object's data.
type Reader struct {
	c    *core.Client
	ref  storage.ObjRef
	caps core.CapSet
	opts Options
	size int64 // object size at open

	blocks   map[int64]*block
	lru      *list.List // front = most recent
	inflight map[int64]*sim.Future

	hits, misses, prefetches, evictions *metrics.Counter
	lastSeq                             int64 // last sequentially-read block
}

// NewReader opens a caching reader over the object. It stats the object
// once to learn its size.
func NewReader(p *sim.Proc, c *core.Client, ref storage.ObjRef, caps core.CapSet, opts Options) (*Reader, error) {
	st, err := c.Stat(p, ref, caps)
	if err != nil {
		return nil, fmt.Errorf("iocache: stat: %w", err)
	}
	// Each reader registers its own instrument set — per-reader hit/miss
	// behavior is an experiment observable, so readers must not aggregate
	// into one shared counter.
	reg := c.Endpoint().Metrics()
	sc := reg.Scope("iocache").Scope(c.Endpoint().NodeName()).Scope(fmt.Sprintf("r%d", reg.NextID()))
	return &Reader{
		c:          c,
		ref:        ref,
		caps:       caps,
		opts:       opts.withDefaults(),
		size:       st.Size,
		blocks:     make(map[int64]*block),
		lru:        list.New(),
		inflight:   make(map[int64]*sim.Future),
		lastSeq:    -2,
		hits:       sc.Counter("hits"),
		misses:     sc.Counter("misses"),
		prefetches: sc.Counter("prefetches"),
		evictions:  sc.Counter("evictions"),
	}, nil
}

// Size returns the object size observed at open.
func (r *Reader) Size() int64 { return r.size }

// Stats reports cache hits, misses, prefetched blocks and evictions.
//
// Deprecated: thin read of `iocache.<node>.r<N>.hits|misses|prefetches|
// evictions`; prefer Registry.Snapshot().
func (r *Reader) Stats() (hits, misses, prefetches, evictions int64) {
	return r.hits.Value(), r.misses.Value(), r.prefetches.Value(), r.evictions.Value()
}

func (r *Reader) nblocks() int64 {
	return (r.size + r.opts.BlockSize - 1) / r.opts.BlockSize
}

// insert adds a fetched block, evicting LRU blocks past capacity.
func (r *Reader) insert(idx int64, payload netsim.Payload) *block {
	if b, ok := r.blocks[idx]; ok {
		r.lru.MoveToFront(b.elem)
		return b
	}
	b := &block{idx: idx, payload: payload}
	b.elem = r.lru.PushFront(b)
	r.blocks[idx] = b
	for r.lru.Len() > r.opts.CapacityBlocks {
		tail := r.lru.Back()
		victim := tail.Value.(*block)
		r.lru.Remove(tail)
		delete(r.blocks, victim.idx)
		r.evictions.Inc()
	}
	return b
}

// fetch returns block idx, from cache, by joining an in-flight fetch, or
// by reading it from the storage server.
func (r *Reader) fetch(p *sim.Proc, idx int64) (netsim.Payload, error) {
	if b, ok := r.blocks[idx]; ok {
		r.hits.Inc()
		r.lru.MoveToFront(b.elem)
		return b.payload, nil
	}
	if fut, ok := r.inflight[idx]; ok {
		// Single flight: join the fetch already under way (counts as a hit
		// — no extra server request).
		r.hits.Inc()
		v, err := fut.Wait(p)
		if err != nil {
			return netsim.Payload{}, err
		}
		return v.(netsim.Payload), nil
	}
	r.misses.Inc()
	fut := sim.NewFuture()
	r.inflight[idx] = fut
	payload, err := r.c.Read(p, r.ref, r.caps, idx*r.opts.BlockSize, r.blockLen(idx))
	delete(r.inflight, idx)
	if err != nil {
		fut.Complete(nil, err)
		return netsim.Payload{}, err
	}
	r.insert(idx, payload)
	fut.Complete(payload, nil)
	return payload, nil
}

func (r *Reader) blockLen(idx int64) int64 {
	n := r.opts.BlockSize
	if end := (idx + 1) * r.opts.BlockSize; end > r.size {
		n = r.size - idx*r.opts.BlockSize
	}
	return n
}

// prefetch launches asynchronous fetches for blocks (idx, idx+ahead].
func (r *Reader) prefetchFrom(idx int64) {
	k := r.c.Endpoint().Kernel()
	for i := idx + 1; i <= idx+int64(r.opts.ReadAhead) && i < r.nblocks(); i++ {
		i := i
		if _, cached := r.blocks[i]; cached {
			continue
		}
		if _, busy := r.inflight[i]; busy {
			continue
		}
		fut := sim.NewFuture()
		r.inflight[i] = fut
		r.prefetches.Inc()
		k.Spawn(fmt.Sprintf("iocache/prefetch-%d", i), func(q *sim.Proc) {
			payload, err := r.c.Read(q, r.ref, r.caps, i*r.opts.BlockSize, r.blockLen(i))
			delete(r.inflight, i)
			if err != nil {
				fut.Complete(nil, err)
				return
			}
			r.insert(i, payload)
			fut.Complete(payload, nil)
		})
	}
}

// ReadAt reads [off, off+length), serving from cache where possible and
// prefetching ahead of sequential cursors. Short reads at end-of-object
// return the available bytes.
func (r *Reader) ReadAt(p *sim.Proc, off, length int64) (netsim.Payload, error) {
	if off < 0 || length < 0 {
		return netsim.Payload{}, fmt.Errorf("iocache: negative range")
	}
	if off >= r.size {
		return netsim.Payload{}, nil
	}
	if off+length > r.size {
		length = r.size - off
	}
	out := netsim.Payload{Size: length}
	var buf []byte
	first := off / r.opts.BlockSize
	last := (off + length - 1) / r.opts.BlockSize
	for idx := first; idx <= last; idx++ {
		payload, err := r.fetch(p, idx)
		if err != nil {
			return netsim.Payload{}, err
		}
		if payload.Data != nil {
			if buf == nil {
				buf = make([]byte, length)
			}
			blockStart := idx * r.opts.BlockSize
			lo, hi := blockStart, blockStart+payload.Size
			if lo < off {
				lo = off
			}
			if hi > off+length {
				hi = off + length
			}
			copy(buf[lo-off:hi-off], payload.Data[lo-blockStart:hi-blockStart])
		}
	}
	// Sequential detection: this read continues where the previous one
	// left off (or re-reads the same tail block), so read ahead.
	if first == r.lastSeq || first == r.lastSeq+1 {
		r.prefetchFrom(last)
	}
	r.lastSeq = last
	out.Data = buf
	return out, nil
}
