package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestEmptyRun(t *testing.T) {
	k := NewKernel()
	if err := k.Run(MaxTime); err != nil {
		t.Fatalf("empty run: %v", err)
	}
	if k.Now() != 0 {
		t.Fatalf("time advanced with no events: %v", k.Now())
	}
}

func TestEventOrdering(t *testing.T) {
	k := NewKernel()
	var got []int
	k.At(30, func() { got = append(got, 3) })
	k.At(10, func() { got = append(got, 1) })
	k.At(20, func() { got = append(got, 2) })
	k.At(10, func() { got = append(got, 11) }) // same instant: submission order
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 11, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	if k.Now() != 30 {
		t.Fatalf("final time = %v, want 30", k.Now())
	}
}

func TestSleepAdvancesVirtualTime(t *testing.T) {
	k := NewKernel()
	var at1, at2 Time
	k.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		at1 = p.Now()
		p.Sleep(10 * time.Millisecond)
		at2 = p.Now()
	})
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if at1 != Time(5*time.Millisecond) || at2 != Time(15*time.Millisecond) {
		t.Fatalf("sleep times: %v %v", at1, at2)
	}
}

func TestSpawnAtStartsLater(t *testing.T) {
	k := NewKernel()
	var started Time
	k.SpawnAt(Time(time.Second), "late", func(p *Proc) { started = p.Now() })
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if started != Time(time.Second) {
		t.Fatalf("started at %v", started)
	}
}

func TestRunLimitPausesAndResumes(t *testing.T) {
	k := NewKernel()
	var done bool
	k.Spawn("p", func(p *Proc) {
		p.Sleep(time.Hour)
		done = true
	})
	if err := k.Run(Time(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if done {
		t.Fatal("ran past limit")
	}
	if k.Now() != Time(time.Minute) {
		t.Fatalf("paused at %v", k.Now())
	}
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if !done || k.Now() != Time(time.Hour) {
		t.Fatalf("done=%v now=%v", done, k.Now())
	}
}

func TestPanicPropagates(t *testing.T) {
	k := NewKernel()
	k.Spawn("boom", func(p *Proc) {
		p.Sleep(time.Millisecond)
		panic("kaput")
	})
	err := k.Run(MaxTime)
	if err == nil {
		t.Fatal("expected error from panicking process")
	}
}

func TestDeadlockDetection(t *testing.T) {
	k := NewKernel()
	m := NewMailbox(k, "never")
	k.Spawn("waiter", func(p *Proc) { m.Recv(p) })
	err := k.Run(MaxTime)
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("expected DeadlockError, got %v", err)
	}
	if len(dl.Blocked) != 1 || dl.Blocked[0] != "waiter" {
		t.Fatalf("blocked = %v", dl.Blocked)
	}
}

func TestMailboxFIFO(t *testing.T) {
	k := NewKernel()
	m := NewMailbox(k, "m")
	var got []int
	k.Spawn("recv", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, m.Recv(p).(int))
		}
	})
	k.Spawn("send", func(p *Proc) {
		m.Send(1)
		p.Sleep(time.Millisecond)
		m.Send(2)
		m.Send(3)
	})
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("got %v", got)
	}
}

func TestMailboxRecvTimeout(t *testing.T) {
	k := NewKernel()
	m := NewMailbox(k, "m")
	var timedOut, gotMsg bool
	k.Spawn("recv", func(p *Proc) {
		_, ok := m.RecvTimeout(p, time.Millisecond)
		timedOut = !ok
		msg, ok := m.RecvTimeout(p, time.Second)
		gotMsg = ok && msg.(string) == "hello"
	})
	k.Spawn("send", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		m.Send("hello")
	})
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if !timedOut || !gotMsg {
		t.Fatalf("timedOut=%v gotMsg=%v", timedOut, gotMsg)
	}
}

func TestMailboxTimeoutRace(t *testing.T) {
	// A send at exactly the timeout instant: either outcome is legal, but
	// the message must not be lost or double-delivered.
	k := NewKernel()
	m := NewMailbox(k, "m")
	delivered := 0
	k.Spawn("recv", func(p *Proc) {
		if _, ok := m.RecvTimeout(p, time.Millisecond); ok {
			delivered++
		}
	})
	k.Spawn("send", func(p *Proc) {
		p.Sleep(time.Millisecond)
		m.Send("x")
	})
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if delivered+m.Len() != 1 {
		t.Fatalf("delivered=%d queued=%d", delivered, m.Len())
	}
}

func TestTryRecv(t *testing.T) {
	k := NewKernel()
	m := NewMailbox(k, "m")
	if _, ok := m.TryRecv(); ok {
		t.Fatal("TryRecv on empty mailbox succeeded")
	}
	m.Send(7)
	v, ok := m.TryRecv()
	if !ok || v.(int) != 7 {
		t.Fatalf("TryRecv = %v %v", v, ok)
	}
}

func TestResourceMutualExclusion(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "disk", 1)
	inside := 0
	maxInside := 0
	for i := 0; i < 5; i++ {
		k.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			r.Acquire(p, 1)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Sleep(time.Millisecond)
			inside--
			r.Release(1)
		})
	}
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if maxInside != 1 {
		t.Fatalf("max concurrent holders = %d", maxInside)
	}
	if k.Now() != Time(5*time.Millisecond) {
		t.Fatalf("serialized time = %v", k.Now())
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "r", 1)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		k.SpawnAt(Time(i), fmt.Sprintf("w%d", i), func(p *Proc) {
			r.Acquire(p, 1)
			order = append(order, i)
			p.Sleep(time.Millisecond)
			r.Release(1)
		})
	}
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3}) {
		t.Fatalf("order = %v", order)
	}
}

func TestResourceCounted(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "r", 3)
	maxHeld := int64(0)
	for i := 0; i < 6; i++ {
		k.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			r.Acquire(p, 1)
			if h := r.Capacity() - r.Available(); h > maxHeld {
				maxHeld = h
			}
			p.Sleep(time.Millisecond)
			r.Release(1)
		})
	}
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if maxHeld != 3 {
		t.Fatalf("max held = %d, want 3", maxHeld)
	}
	if k.Now() != Time(2*time.Millisecond) {
		t.Fatalf("elapsed %v, want 2ms", k.Now())
	}
}

func TestResourceUseAccountsBusyTime(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "r", 1)
	k.Spawn("u", func(p *Proc) {
		r.Use(p, 1, 3*time.Millisecond)
		p.Sleep(time.Millisecond)
		r.Use(p, 1, 2*time.Millisecond)
	})
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if r.BusyTime() != 5*time.Millisecond {
		t.Fatalf("busy = %v", r.BusyTime())
	}
}

func TestWaitGroup(t *testing.T) {
	k := NewKernel()
	var wg WaitGroup
	var finished Time
	n := 5
	wg.Add(n)
	for i := 0; i < n; i++ {
		d := time.Duration(i+1) * time.Millisecond
		k.Spawn(fmt.Sprintf("t%d", i), func(p *Proc) {
			p.Sleep(d)
			wg.Done()
		})
	}
	k.Spawn("waiter", func(p *Proc) {
		wg.Wait(p)
		finished = p.Now()
	})
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if finished != Time(5*time.Millisecond) {
		t.Fatalf("waiter finished at %v", finished)
	}
}

func TestBarrier(t *testing.T) {
	k := NewKernel()
	b := NewBarrier(3)
	var releases []Time
	for i := 0; i < 3; i++ {
		d := time.Duration(i) * time.Millisecond
		k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Sleep(d)
			b.Await(p)
			releases = append(releases, p.Now())
		})
	}
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	for _, r := range releases {
		if r != Time(2*time.Millisecond) {
			t.Fatalf("releases = %v", releases)
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	k := NewKernel()
	b := NewBarrier(2)
	rounds := 0
	for i := 0; i < 2; i++ {
		k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for r := 0; r < 3; r++ {
				p.Sleep(time.Millisecond)
				b.Await(p)
				if p.Name() == "p0" {
					rounds++
				}
			}
		})
	}
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if rounds != 3 {
		t.Fatalf("rounds = %d", rounds)
	}
}

func TestFuture(t *testing.T) {
	k := NewKernel()
	f := NewFuture()
	var got interface{}
	k.Spawn("w", func(p *Proc) {
		v, err := f.Wait(p)
		if err != nil {
			t.Errorf("future err: %v", err)
		}
		got = v
	})
	k.Spawn("c", func(p *Proc) {
		p.Sleep(time.Millisecond)
		f.Complete(42, nil)
	})
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("got %v", got)
	}
}

func TestFutureCompletedBeforeWait(t *testing.T) {
	k := NewKernel()
	f := NewFuture()
	f.Complete("v", nil)
	var got interface{}
	k.Spawn("w", func(p *Proc) { got, _ = f.Wait(p) })
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if got != "v" {
		t.Fatalf("got %v", got)
	}
}

func TestFIFOServerSerializes(t *testing.T) {
	k := NewKernel()
	s := NewFIFOServer(k, "link")
	var finishes []Time
	k.Spawn("a", func(p *Proc) {
		s.Wait(p, 10*time.Millisecond)
		finishes = append(finishes, p.Now())
	})
	k.Spawn("b", func(p *Proc) {
		s.Wait(p, 10*time.Millisecond)
		finishes = append(finishes, p.Now())
	})
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	want := []Time{Time(10 * time.Millisecond), Time(20 * time.Millisecond)}
	if !reflect.DeepEqual(finishes, want) {
		t.Fatalf("finishes = %v", finishes)
	}
}

func TestFIFOServerIdleGap(t *testing.T) {
	k := NewKernel()
	s := NewFIFOServer(k, "link")
	var second Time
	k.Spawn("a", func(p *Proc) {
		s.Wait(p, time.Millisecond)
		p.Sleep(10 * time.Millisecond) // server idles
		s.Wait(p, time.Millisecond)
		second = p.Now()
	})
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if second != Time(12*time.Millisecond) {
		t.Fatalf("second = %v", second)
	}
	if s.BusyTime() != 2*time.Millisecond {
		t.Fatalf("busy = %v", s.BusyTime())
	}
}

func TestFIFOServerScheduleCallback(t *testing.T) {
	k := NewKernel()
	s := NewFIFOServer(k, "x")
	var at Time
	s.Schedule(7*time.Millisecond, func() { at = k.Now() })
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if at != Time(7*time.Millisecond) {
		t.Fatalf("at = %v", at)
	}
}

func TestRate(t *testing.T) {
	if d := Rate(100<<20, 100*1e6); d != time.Duration(float64(100<<20)/100e6*1e9) {
		t.Fatalf("Rate = %v", d)
	}
	if d := Rate(0, 1e6); d != 0 {
		t.Fatalf("Rate(0) = %v", d)
	}
}

// Property: the kernel is deterministic — the same randomized workload run
// twice produces identical event traces and identical final virtual times.
func TestDeterminismProperty(t *testing.T) {
	run := func(seed int64) (Time, string) {
		k := NewKernel()
		rng := rand.New(rand.NewSource(seed))
		r := NewResource(k, "r", 2)
		m := NewMailbox(k, "m")
		trace := ""
		n := 8
		for i := 0; i < n; i++ {
			i := i
			d := time.Duration(rng.Intn(1000)) * time.Microsecond
			k.SpawnAt(Time(rng.Intn(100)), fmt.Sprintf("p%d", i), func(p *Proc) {
				p.Sleep(d)
				r.Acquire(p, 1)
				p.Sleep(time.Duration(rng.Intn(500)) * time.Microsecond)
				r.Release(1)
				m.Send(i)
				trace += fmt.Sprintf("%d@%v;", i, p.Now())
			})
		}
		k.Spawn("drain", func(p *Proc) {
			for i := 0; i < n; i++ {
				v := m.Recv(p).(int)
				trace += fmt.Sprintf("recv%d;", v)
			}
		})
		if err := k.Run(MaxTime); err != nil {
			t.Fatal(err)
		}
		return k.Now(), trace
	}
	prop := func(seed int64) bool {
		t1, tr1 := run(seed)
		t2, tr2 := run(seed)
		return t1 == t2 && tr1 == tr2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: a FIFO server's completion times are non-decreasing and its busy
// time equals the sum of service times.
func TestFIFOServerProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		k := NewKernel()
		s := NewFIFOServer(k, "s")
		var total time.Duration
		last := Time(-1)
		monotone := true
		for _, r := range raw {
			svc := time.Duration(r) * time.Microsecond
			total += svc
			fin := s.Schedule(svc, nil)
			if fin < last {
				monotone = false
			}
			last = fin
		}
		if err := k.Run(MaxTime); err != nil {
			return false
		}
		return monotone && s.BusyTime() == total
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: counted resources never over-commit, regardless of the
// acquire/release schedule.
func TestResourceNeverOvercommits(t *testing.T) {
	prop := func(seed int64, capRaw uint8) bool {
		capacity := int64(capRaw%5) + 1
		k := NewKernel()
		r := NewResource(k, "r", capacity)
		rng := rand.New(rand.NewSource(seed))
		held := int64(0)
		ok := true
		for i := 0; i < 12; i++ {
			n := int64(rng.Intn(int(capacity))) + 1
			hold := time.Duration(rng.Intn(300)) * time.Microsecond
			k.SpawnAt(Time(rng.Intn(50)), fmt.Sprintf("p%d", i), func(p *Proc) {
				r.Acquire(p, n)
				held += n
				if held > capacity {
					ok = false
				}
				p.Sleep(hold)
				held -= n
				r.Release(n)
			})
		}
		if err := k.Run(MaxTime); err != nil {
			return false
		}
		return ok && r.Available() == capacity
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
