package sim

import (
	"fmt"
	"time"
)

// minMailboxCap is the smallest ring-buffer capacity a mailbox keeps once it
// has allocated one; rings shrink back toward it as queues drain.
const minMailboxCap = 8

// Mailbox is an unbounded FIFO message queue connecting simulated processes.
// Send never blocks; Recv blocks the calling process until a message is
// available. A Mailbox may have many senders and many receivers; messages go
// to receivers in FIFO order of their arrival at the mailbox.
//
// Messages are stored in a power-of-two ring buffer that grows on demand and
// shrinks as it drains, so a long-lived daemon mailbox that once absorbed a
// burst does not retain the burst's backing array (or the delivered
// messages) forever.
type Mailbox struct {
	k       *Kernel
	name    string
	buf     []interface{} // power-of-two ring; nil until first queued message
	head    int
	n       int
	waiters []*mboxWaiter
}

// mboxWaiter records one blocked receiver. Waiters are pooled per process
// (Proc.mw): a process blocks on at most one mailbox at a time, so Recv and
// RecvTimeout never allocate.
type mboxWaiter struct {
	p        *Proc
	m        *Mailbox
	msg      interface{}
	ok       bool
	timedOut bool
	hasTO    bool
	cancelTO cancelHandle
}

// fireTimeout is the timeout callback for RecvTimeout: remove the waiter
// from its mailbox and wake it empty-handed. It is invoked through the
// pre-built Proc.mwTimeout closure, so arming a timeout allocates nothing.
func (w *mboxWaiter) fireTimeout() {
	m := w.m
	for i, x := range m.waiters {
		if x == w {
			m.waiters = append(m.waiters[:i], m.waiters[i+1:]...)
			break
		}
	}
	w.hasTO = false
	w.timedOut = true
	w.p.unpark()
}

// NewMailbox creates a mailbox attached to k. The name appears in traces and
// deadlock reports.
func NewMailbox(k *Kernel, name string) *Mailbox {
	return &Mailbox{k: k, name: name}
}

// Name returns the mailbox's name.
func (m *Mailbox) Name() string { return m.name }

// Len reports the number of queued (undelivered) messages.
func (m *Mailbox) Len() int { return m.n }

// Cap reports the current ring-buffer capacity (for tests and gauges).
func (m *Mailbox) Cap() int { return len(m.buf) }

func (m *Mailbox) push(msg interface{}) {
	if m.n == len(m.buf) {
		m.resize(len(m.buf) * 2)
	}
	m.buf[(m.head+m.n)&(len(m.buf)-1)] = msg
	m.n++
}

func (m *Mailbox) pop() interface{} {
	msg := m.buf[m.head]
	m.buf[m.head] = nil // release the reference now, not at overwrite time
	m.head = (m.head + 1) & (len(m.buf) - 1)
	m.n--
	if len(m.buf) > minMailboxCap && m.n <= len(m.buf)/4 {
		m.resize(len(m.buf) / 2)
	}
	return msg
}

// resize re-bases the ring into a buffer of capacity c (a power of two,
// clamped to minMailboxCap).
func (m *Mailbox) resize(c int) {
	if c < minMailboxCap {
		c = minMailboxCap
	}
	if c == len(m.buf) {
		return
	}
	nb := make([]interface{}, c)
	for i := 0; i < m.n; i++ {
		nb[i] = m.buf[(m.head+i)&(len(m.buf)-1)]
	}
	m.buf = nb
	m.head = 0
}

// popWaiter removes the head waiter without advancing the slice base, so
// the backing array is reused forever (append never reallocates in steady
// state).
func (m *Mailbox) popWaiter() *mboxWaiter {
	w := m.waiters[0]
	last := len(m.waiters) - 1
	copy(m.waiters, m.waiters[1:])
	m.waiters[last] = nil
	m.waiters = m.waiters[:last]
	return w
}

// Send enqueues msg at the current instant. If a receiver is waiting, it is
// handed the message and resumed. Send may be called from kernel context or
// from any process.
func (m *Mailbox) Send(msg interface{}) {
	if len(m.waiters) > 0 {
		w := m.popWaiter()
		w.msg, w.ok = msg, true
		if w.hasTO {
			w.hasTO = false
			m.k.cancel(w.cancelTO)
		}
		w.p.unpark()
		return
	}
	m.push(msg)
}

// SendAfter enqueues msg d after the current instant (a one-way message
// delay without modeling the medium).
func (m *Mailbox) SendAfter(d time.Duration, msg interface{}) {
	m.k.After(d, func() { m.Send(msg) })
}

// wait registers p's pooled waiter and returns it.
func (m *Mailbox) wait(p *Proc) *mboxWaiter {
	w := &p.mw
	w.p, w.m = p, m
	w.msg, w.ok, w.timedOut, w.hasTO = nil, false, false, false
	m.waiters = append(m.waiters, w)
	return w
}

// Recv blocks p until a message is available and returns it.
func (m *Mailbox) Recv(p *Proc) interface{} {
	if m.n > 0 {
		return m.pop()
	}
	w := m.wait(p)
	p.park()
	if !w.ok {
		panic(fmt.Sprintf("sim: mailbox %q: process resumed without a message", m.name))
	}
	msg := w.msg
	w.msg = nil
	return msg
}

// RecvTimeout is Recv but gives up after d, returning ok=false.
func (m *Mailbox) RecvTimeout(p *Proc, d time.Duration) (msg interface{}, ok bool) {
	if m.n > 0 {
		return m.pop(), true
	}
	if p.mwTimeout == nil {
		p.mwTimeout = p.mw.fireTimeout
	}
	w := m.wait(p)
	w.hasTO = true
	w.cancelTO = m.k.scheduleCancelable(m.k.now.Add(d), p.mwTimeout)
	p.park()
	if w.timedOut {
		return nil, false
	}
	msg = w.msg
	w.msg = nil
	return msg, w.ok
}

// TryRecv returns a queued message without blocking, or ok=false.
func (m *Mailbox) TryRecv() (msg interface{}, ok bool) {
	if m.n == 0 {
		return nil, false
	}
	return m.pop(), true
}

// Resource is a counted resource (disk arms, NIC DMA engines, server service
// threads) with FIFO waiters. Acquire(n) blocks until n units are free.
type Resource struct {
	k        *Kernel
	name     string
	capacity int64
	avail    int64
	waiters  []*resWaiter

	// Busy-time accounting for utilization reports.
	busySince Time
	busyAccum time.Duration
}

// resWaiter is pooled per process (Proc.rw), like mboxWaiter.
type resWaiter struct {
	p *Proc
	n int64
}

// NewResource creates a resource with the given capacity (units are caller
// defined: bytes in flight, concurrent ops, ...).
func NewResource(k *Kernel, name string, capacity int64) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{k: k, name: name, capacity: capacity, avail: capacity}
}

// Name returns the resource's name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the total capacity.
func (r *Resource) Capacity() int64 { return r.capacity }

// Available returns the currently free units.
func (r *Resource) Available() int64 { return r.avail }

// QueueLen reports the number of blocked acquirers.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// Acquire blocks p until n units are available and claims them.
// n must be in (0, capacity].
func (r *Resource) Acquire(p *Proc, n int64) {
	if n <= 0 || n > r.capacity {
		panic(fmt.Sprintf("sim: resource %q: acquire %d of capacity %d", r.name, n, r.capacity))
	}
	if len(r.waiters) == 0 && r.avail >= n {
		r.take(n)
		return
	}
	w := &p.rw
	w.p, w.n = p, n
	r.waiters = append(r.waiters, w)
	p.park()
}

// TryAcquire claims n units if they are immediately available.
func (r *Resource) TryAcquire(n int64) bool {
	if len(r.waiters) == 0 && r.avail >= n {
		r.take(n)
		return true
	}
	return false
}

func (r *Resource) take(n int64) {
	if r.avail == r.capacity {
		r.busySince = r.k.now
	}
	r.avail -= n
}

// Release returns n units and resumes as many FIFO waiters as now fit.
func (r *Resource) Release(n int64) {
	r.avail += n
	if r.avail > r.capacity {
		panic(fmt.Sprintf("sim: resource %q: release beyond capacity", r.name))
	}
	if r.avail == r.capacity {
		r.busyAccum += r.k.now.Sub(r.busySince)
	}
	for len(r.waiters) > 0 && r.waiters[0].n <= r.avail {
		w := r.waiters[0]
		last := len(r.waiters) - 1
		copy(r.waiters, r.waiters[1:])
		r.waiters[last] = nil
		r.waiters = r.waiters[:last]
		r.take(w.n)
		w.p.unpark()
	}
}

// Use acquires n units, holds them for d, then releases them. It models a
// service time on a contended resource (e.g. a disk transferring a chunk).
func (r *Resource) Use(p *Proc, n int64, d time.Duration) {
	r.Acquire(p, n)
	p.Sleep(d)
	r.Release(n)
}

// BusyTime reports the accumulated virtual time during which at least one
// unit was claimed. If the resource is busy now, time up to Now is included.
func (r *Resource) BusyTime() time.Duration {
	t := r.busyAccum
	if r.avail < r.capacity {
		t += r.k.now.Sub(r.busySince)
	}
	return t
}

// WaitGroup counts outstanding simulated tasks; Wait blocks until the count
// reaches zero. Unlike sync.WaitGroup it is single-threaded (kernel order).
type WaitGroup struct {
	count   int
	waiters []*Proc
}

// Add adds delta to the counter.
func (wg *WaitGroup) Add(delta int) {
	wg.count += delta
	if wg.count < 0 {
		panic("sim: WaitGroup counter below zero")
	}
	if wg.count == 0 {
		ws := wg.waiters
		wg.waiters = nil
		for _, p := range ws {
			p.unpark()
		}
	}
}

// Done decrements the counter.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Wait blocks p until the counter is zero.
func (wg *WaitGroup) Wait(p *Proc) {
	if wg.count == 0 {
		return
	}
	wg.waiters = append(wg.waiters, p)
	p.park()
}

// Barrier releases all participants once n of them have arrived, then
// resets for reuse. It models, e.g., an MPI_Barrier across client processes.
type Barrier struct {
	n       int
	arrived []*Proc
	gen     int
}

// NewBarrier creates a barrier for n participants.
func NewBarrier(n int) *Barrier {
	if n <= 0 {
		panic("sim: barrier size must be positive")
	}
	return &Barrier{n: n}
}

// Await blocks p until n participants (including p) have arrived.
func (b *Barrier) Await(p *Proc) {
	if len(b.arrived)+1 == b.n {
		arrived := b.arrived
		b.arrived = nil
		b.gen++
		for _, q := range arrived {
			q.unpark()
		}
		return
	}
	b.arrived = append(b.arrived, p)
	p.park()
}

// Future is a one-shot value container: one producer completes it, any
// number of consumers Wait for it. Completing twice panics.
type Future struct {
	done    bool
	val     interface{}
	err     error
	waiters []*Proc
}

// NewFuture returns an incomplete future.
func NewFuture() *Future { return &Future{} }

// Complete resolves the future and wakes all waiters.
func (f *Future) Complete(val interface{}, err error) {
	if f.done {
		panic("sim: future completed twice")
	}
	f.done = true
	f.val, f.err = val, err
	ws := f.waiters
	f.waiters = nil
	for _, p := range ws {
		p.unpark()
	}
}

// Done reports whether the future has resolved.
func (f *Future) Done() bool { return f.done }

// Wait blocks p until the future resolves and returns its value and error.
func (f *Future) Wait(p *Proc) (interface{}, error) {
	if !f.done {
		f.waiters = append(f.waiters, p)
		p.park()
	}
	return f.val, f.err
}

// WaitTimeout is Wait but gives up after d, returning ok=false. The future
// stays valid: a later Wait (or a retry) still observes its completion.
func (f *Future) WaitTimeout(p *Proc, d time.Duration) (val interface{}, err error, ok bool) {
	if f.done {
		return f.val, f.err, true
	}
	timedOut := false
	cancel := p.k.afterCancelable(d, func() {
		// Wake p empty-handed only if it is still waiting; Complete removes
		// waiters before unparking them, so this cannot double-resume.
		for i, q := range f.waiters {
			if q == p {
				f.waiters = append(f.waiters[:i], f.waiters[i+1:]...)
				timedOut = true
				p.unpark()
				return
			}
		}
	})
	f.waiters = append(f.waiters, p)
	p.park()
	if timedOut {
		return nil, nil, false
	}
	cancel()
	return f.val, f.err, true
}
