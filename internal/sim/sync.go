package sim

import (
	"fmt"
	"time"
)

// Mailbox is an unbounded FIFO message queue connecting simulated processes.
// Send never blocks; Recv blocks the calling process until a message is
// available. A Mailbox may have many senders and many receivers; messages go
// to receivers in FIFO order of their arrival at the mailbox.
type Mailbox struct {
	k       *Kernel
	name    string
	queue   []interface{}
	waiters []*mboxWaiter
}

type mboxWaiter struct {
	p        *Proc
	msg      interface{}
	ok       bool
	timedOut bool
	cancelTO func()
}

// NewMailbox creates a mailbox attached to k. The name appears in traces and
// deadlock reports.
func NewMailbox(k *Kernel, name string) *Mailbox {
	return &Mailbox{k: k, name: name}
}

// Name returns the mailbox's name.
func (m *Mailbox) Name() string { return m.name }

// Len reports the number of queued (undelivered) messages.
func (m *Mailbox) Len() int { return len(m.queue) }

// Send enqueues msg at the current instant. If a receiver is waiting, it is
// handed the message and resumed. Send may be called from kernel context or
// from any process.
func (m *Mailbox) Send(msg interface{}) {
	if len(m.waiters) > 0 {
		w := m.waiters[0]
		m.waiters = m.waiters[1:]
		w.msg, w.ok = msg, true
		if w.cancelTO != nil {
			w.cancelTO()
		}
		w.p.unpark()
		return
	}
	m.queue = append(m.queue, msg)
}

// SendAfter enqueues msg d after the current instant (a one-way message
// delay without modeling the medium).
func (m *Mailbox) SendAfter(d time.Duration, msg interface{}) {
	m.k.After(d, func() { m.Send(msg) })
}

// Recv blocks p until a message is available and returns it.
func (m *Mailbox) Recv(p *Proc) interface{} {
	if len(m.queue) > 0 {
		msg := m.queue[0]
		m.queue = m.queue[1:]
		return msg
	}
	w := &mboxWaiter{p: p}
	m.waiters = append(m.waiters, w)
	p.park()
	if !w.ok {
		panic(fmt.Sprintf("sim: mailbox %q: process resumed without a message", m.name))
	}
	return w.msg
}

// RecvTimeout is Recv but gives up after d, returning ok=false.
func (m *Mailbox) RecvTimeout(p *Proc, d time.Duration) (msg interface{}, ok bool) {
	if len(m.queue) > 0 {
		msg := m.queue[0]
		m.queue = m.queue[1:]
		return msg, true
	}
	w := &mboxWaiter{p: p}
	w.cancelTO = m.k.afterCancelable(d, func() {
		// Remove w from the waiter list and wake it empty-handed.
		for i, x := range m.waiters {
			if x == w {
				m.waiters = append(m.waiters[:i], m.waiters[i+1:]...)
				break
			}
		}
		w.timedOut = true
		w.p.unpark()
	})
	m.waiters = append(m.waiters, w)
	p.park()
	if w.timedOut {
		return nil, false
	}
	return w.msg, w.ok
}

// TryRecv returns a queued message without blocking, or ok=false.
func (m *Mailbox) TryRecv() (msg interface{}, ok bool) {
	if len(m.queue) == 0 {
		return nil, false
	}
	msg = m.queue[0]
	m.queue = m.queue[1:]
	return msg, true
}

// Resource is a counted resource (disk arms, NIC DMA engines, server service
// threads) with FIFO waiters. Acquire(n) blocks until n units are free.
type Resource struct {
	k        *Kernel
	name     string
	capacity int64
	avail    int64
	waiters  []*resWaiter

	// Busy-time accounting for utilization reports.
	busySince Time
	busyAccum time.Duration
}

type resWaiter struct {
	p *Proc
	n int64
}

// NewResource creates a resource with the given capacity (units are caller
// defined: bytes in flight, concurrent ops, ...).
func NewResource(k *Kernel, name string, capacity int64) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{k: k, name: name, capacity: capacity, avail: capacity}
}

// Name returns the resource's name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the total capacity.
func (r *Resource) Capacity() int64 { return r.capacity }

// Available returns the currently free units.
func (r *Resource) Available() int64 { return r.avail }

// QueueLen reports the number of blocked acquirers.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// Acquire blocks p until n units are available and claims them.
// n must be in (0, capacity].
func (r *Resource) Acquire(p *Proc, n int64) {
	if n <= 0 || n > r.capacity {
		panic(fmt.Sprintf("sim: resource %q: acquire %d of capacity %d", r.name, n, r.capacity))
	}
	if len(r.waiters) == 0 && r.avail >= n {
		r.take(n)
		return
	}
	r.waiters = append(r.waiters, &resWaiter{p: p, n: n})
	p.park()
}

// TryAcquire claims n units if they are immediately available.
func (r *Resource) TryAcquire(n int64) bool {
	if len(r.waiters) == 0 && r.avail >= n {
		r.take(n)
		return true
	}
	return false
}

func (r *Resource) take(n int64) {
	if r.avail == r.capacity {
		r.busySince = r.k.now
	}
	r.avail -= n
}

// Release returns n units and resumes as many FIFO waiters as now fit.
func (r *Resource) Release(n int64) {
	r.avail += n
	if r.avail > r.capacity {
		panic(fmt.Sprintf("sim: resource %q: release beyond capacity", r.name))
	}
	if r.avail == r.capacity {
		r.busyAccum += r.k.now.Sub(r.busySince)
	}
	for len(r.waiters) > 0 && r.waiters[0].n <= r.avail {
		w := r.waiters[0]
		r.waiters = r.waiters[1:]
		r.take(w.n)
		w.p.unpark()
	}
}

// Use acquires n units, holds them for d, then releases them. It models a
// service time on a contended resource (e.g. a disk transferring a chunk).
func (r *Resource) Use(p *Proc, n int64, d time.Duration) {
	r.Acquire(p, n)
	p.Sleep(d)
	r.Release(n)
}

// BusyTime reports the accumulated virtual time during which at least one
// unit was claimed. If the resource is busy now, time up to Now is included.
func (r *Resource) BusyTime() time.Duration {
	t := r.busyAccum
	if r.avail < r.capacity {
		t += r.k.now.Sub(r.busySince)
	}
	return t
}

// WaitGroup counts outstanding simulated tasks; Wait blocks until the count
// reaches zero. Unlike sync.WaitGroup it is single-threaded (kernel order).
type WaitGroup struct {
	count   int
	waiters []*Proc
}

// Add adds delta to the counter.
func (wg *WaitGroup) Add(delta int) {
	wg.count += delta
	if wg.count < 0 {
		panic("sim: WaitGroup counter below zero")
	}
	if wg.count == 0 {
		ws := wg.waiters
		wg.waiters = nil
		for _, p := range ws {
			p.unpark()
		}
	}
}

// Done decrements the counter.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Wait blocks p until the counter is zero.
func (wg *WaitGroup) Wait(p *Proc) {
	if wg.count == 0 {
		return
	}
	wg.waiters = append(wg.waiters, p)
	p.park()
}

// Barrier releases all participants once n of them have arrived, then
// resets for reuse. It models, e.g., an MPI_Barrier across client processes.
type Barrier struct {
	n       int
	arrived []*Proc
	gen     int
}

// NewBarrier creates a barrier for n participants.
func NewBarrier(n int) *Barrier {
	if n <= 0 {
		panic("sim: barrier size must be positive")
	}
	return &Barrier{n: n}
}

// Await blocks p until n participants (including p) have arrived.
func (b *Barrier) Await(p *Proc) {
	if len(b.arrived)+1 == b.n {
		arrived := b.arrived
		b.arrived = nil
		b.gen++
		for _, q := range arrived {
			q.unpark()
		}
		return
	}
	b.arrived = append(b.arrived, p)
	p.park()
}

// Future is a one-shot value container: one producer completes it, any
// number of consumers Wait for it. Completing twice panics.
type Future struct {
	done    bool
	val     interface{}
	err     error
	waiters []*Proc
}

// NewFuture returns an incomplete future.
func NewFuture() *Future { return &Future{} }

// Complete resolves the future and wakes all waiters.
func (f *Future) Complete(val interface{}, err error) {
	if f.done {
		panic("sim: future completed twice")
	}
	f.done = true
	f.val, f.err = val, err
	ws := f.waiters
	f.waiters = nil
	for _, p := range ws {
		p.unpark()
	}
}

// Done reports whether the future has resolved.
func (f *Future) Done() bool { return f.done }

// Wait blocks p until the future resolves and returns its value and error.
func (f *Future) Wait(p *Proc) (interface{}, error) {
	if !f.done {
		f.waiters = append(f.waiters, p)
		p.park()
	}
	return f.val, f.err
}

// WaitTimeout is Wait but gives up after d, returning ok=false. The future
// stays valid: a later Wait (or a retry) still observes its completion.
func (f *Future) WaitTimeout(p *Proc, d time.Duration) (val interface{}, err error, ok bool) {
	if f.done {
		return f.val, f.err, true
	}
	timedOut := false
	cancel := p.k.afterCancelable(d, func() {
		// Wake p empty-handed only if it is still waiting; Complete removes
		// waiters before unparking them, so this cannot double-resume.
		for i, q := range f.waiters {
			if q == p {
				f.waiters = append(f.waiters[:i], f.waiters[i+1:]...)
				timedOut = true
				p.unpark()
				return
			}
		}
	})
	f.waiters = append(f.waiters, p)
	p.park()
	if timedOut {
		return nil, nil, false
	}
	cancel()
	return f.val, f.err, true
}
