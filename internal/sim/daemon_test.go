package sim

import (
	"testing"
	"time"
)

func TestDaemonBlockedForeverIsNotDeadlock(t *testing.T) {
	k := NewKernel()
	m := NewMailbox(k, "queue")
	served := 0
	k.SpawnDaemon("server", func(p *Proc) {
		for {
			m.Recv(p)
			served++
		}
	})
	k.Spawn("client", func(p *Proc) {
		m.Send(1)
		m.Send(2)
	})
	if err := k.Run(MaxTime); err != nil {
		t.Fatalf("run with idle daemon: %v", err)
	}
	if served != 2 {
		t.Fatalf("served = %d", served)
	}
}

func TestNonDaemonStillDeadlocks(t *testing.T) {
	k := NewKernel()
	m := NewMailbox(k, "never")
	k.SpawnDaemon("daemon", func(p *Proc) {
		for {
			m.Recv(p)
		}
	})
	other := NewMailbox(k, "other")
	k.Spawn("stuck", func(p *Proc) { other.Recv(p) })
	err := k.Run(MaxTime)
	if err == nil {
		t.Fatal("expected deadlock for non-daemon")
	}
	dl, ok := err.(*DeadlockError)
	if !ok || len(dl.Blocked) != 1 || dl.Blocked[0] != "stuck" {
		t.Fatalf("deadlock report: %v", err)
	}
}

func TestDaemonStillRunsScheduledWork(t *testing.T) {
	k := NewKernel()
	var woke Time
	k.SpawnDaemon("ticker", func(p *Proc) {
		p.Sleep(time.Second)
		woke = p.Now()
		// then parks forever
		NewMailbox(k, "x").Recv(p)
	})
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if woke != Time(time.Second) {
		t.Fatalf("daemon woke at %v", woke)
	}
}

func TestRunLimitWithDaemonsOnly(t *testing.T) {
	k := NewKernel()
	ticks := 0
	k.SpawnDaemon("ticker", func(p *Proc) {
		for {
			p.Sleep(time.Second)
			ticks++
		}
	})
	if err := k.Run(Time(3500 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if ticks != 3 {
		t.Fatalf("ticks = %d", ticks)
	}
}
