package sim

import (
	"testing"
	"time"
)

// TestMailboxRingGrowShrink pins the ring-buffer behavior behind Mailbox:
// the backing array grows to absorb a burst, preserves FIFO order across
// wrap-around, and shrinks back as the queue drains so a long-lived daemon
// mailbox does not retain its high-water mark (the old `queue = queue[1:]`
// implementation never released delivered messages).
func TestMailboxRingGrowShrink(t *testing.T) {
	k := NewKernel()
	m := NewMailbox(k, "ring")

	// Offset the head so the burst wraps around the ring.
	for i := 0; i < 5; i++ {
		m.Send(i)
	}
	for i := 0; i < 5; i++ {
		if got, ok := m.TryRecv(); !ok || got.(int) != i {
			t.Fatalf("warmup recv %d: got %v, %v", i, got, ok)
		}
	}

	const burst = 1000
	for i := 0; i < burst; i++ {
		m.Send(i)
	}
	if m.Len() != burst {
		t.Fatalf("Len = %d, want %d", m.Len(), burst)
	}
	grownCap := m.Cap()
	if grownCap < burst {
		t.Fatalf("cap %d did not grow to hold %d messages", grownCap, burst)
	}
	if grownCap&(grownCap-1) != 0 {
		t.Fatalf("cap %d is not a power of two", grownCap)
	}

	// Drain in FIFO order; the ring must shrink as it empties.
	for i := 0; i < burst; i++ {
		got, ok := m.TryRecv()
		if !ok || got.(int) != i {
			t.Fatalf("recv %d: got %v, %v", i, got, ok)
		}
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d after drain", m.Len())
	}
	if m.Cap() >= grownCap {
		t.Fatalf("cap %d did not shrink from burst high-water %d", m.Cap(), grownCap)
	}

	// Still a working FIFO after shrinking.
	for i := 0; i < 20; i++ {
		m.Send(100 + i)
	}
	for i := 0; i < 20; i++ {
		if got, ok := m.TryRecv(); !ok || got.(int) != 100+i {
			t.Fatalf("post-shrink recv %d: got %v, %v", i, got, ok)
		}
	}
}

// TestCanceledEventsReturnToPool pins the canceled-timeout lifecycle: cancel
// releases the arena slot immediately (the pool stops growing no matter how
// many schedule/cancel cycles run), the cancellation is counted, and
// tombstoned heap entries are compacted away instead of accumulating until
// their original instant.
func TestCanceledEventsReturnToPool(t *testing.T) {
	k := NewKernel()

	// Steady-state schedule/cancel churn: a hot retry path arming and
	// beating timeouts. All slots must be recycled.
	var cancels []func()
	for round := 0; round < 100; round++ {
		for i := 0; i < 10; i++ {
			cancels = append(cancels, k.afterCancelable(time.Hour, func() {
				t.Error("canceled event fired")
			}))
		}
		for _, c := range cancels {
			c()
		}
		cancels = cancels[:0]
	}
	if got := k.EventsCanceled(); got != 1000 {
		t.Fatalf("EventsCanceled = %d, want 1000", got)
	}
	if pool := k.EventPoolSize(); pool > 64 {
		t.Fatalf("event pool grew to %d slots; canceled slots are not being recycled", pool)
	}
	// Tombstones must have been compacted, not left to linger until their
	// instant (time.Hour away): with every event canceled the heap should
	// be (near) empty well before then.
	if len(k.heap) > 64 {
		t.Fatalf("%d heap entries linger after cancellation; compaction did not run", len(k.heap))
	}
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if k.Now() != 0 {
		t.Fatalf("virtual time advanced to %v dispatching canceled events", k.Now())
	}

	// Live events interleaved with canceled ones still fire in order.
	var fired []int
	for i := 0; i < 50; i++ {
		i := i
		cancel := k.afterCancelable(time.Duration(i+1)*time.Millisecond, func() { fired = append(fired, i) })
		if i%2 == 1 {
			cancel()
		}
	}
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 25 {
		t.Fatalf("fired %d events, want 25", len(fired))
	}
	for j, v := range fired {
		if v != 2*j {
			t.Fatalf("fired[%d] = %d, want %d", j, v, 2*j)
		}
	}
}

// TestCancelAfterFireIsNoOp guards the generation check: canceling an event
// that already fired must not tombstone an unrelated event that reused its
// arena slot.
func TestCancelAfterFireIsNoOp(t *testing.T) {
	k := NewKernel()
	fired := 0
	stale := k.afterCancelable(time.Millisecond, func() { fired++ })
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	// The slot is free; this schedule reuses it.
	k.afterCancelable(time.Millisecond, func() { fired++ })
	stale() // must not cancel the new occupant
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("fired %d events, want 2 (stale cancel hit a reused slot)", fired)
	}
	if k.EventsCanceled() != 0 {
		t.Fatalf("EventsCanceled = %d, want 0", k.EventsCanceled())
	}
}

// TestSameInstantRingOrdering verifies that the heap-bypass ring for
// At(now)/unpark events preserves global submission order against events
// that reached the same instant through the heap.
func TestSameInstantRingOrdering(t *testing.T) {
	k := NewKernel()
	var order []int
	k.After(time.Millisecond, func() {
		// Runs via the heap at t=1ms. Everything scheduled below lands at
		// the same instant, mixing heap (cancelable, After(0)) and ring
		// (At(now)) paths; they must fire in submission order.
		k.At(k.Now(), func() { order = append(order, 0) })
		k.afterCancelable(0, func() { order = append(order, 1) })
		k.At(k.Now(), func() { order = append(order, 2) })
		k.After(0, func() { order = append(order, 3) })
		k.afterCancelable(0, func() { order = append(order, 4) })
	})
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant order = %v, want ascending", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("ran %d events, want 5", len(order))
	}
}
