package sim

import (
	"testing"
	"time"
)

func TestRandDeterministicGivenSeed(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequence diverged at %d", i)
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestRandRanges(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		if n := r.Int63n(17); n < 0 || n >= 17 {
			t.Fatalf("Int63n(17) = %d", n)
		}
		if d := r.Duration(time.Millisecond); d < 0 || d >= time.Millisecond {
			t.Fatalf("Duration = %v", d)
		}
	}
	if r.Duration(0) != 0 {
		t.Fatal("Duration(0) != 0")
	}
}

func TestRandRoughlyUniform(t *testing.T) {
	r := NewRand(1)
	buckets := make([]int, 10)
	const n = 10000
	for i := 0; i < n; i++ {
		buckets[r.Intn(10)]++
	}
	for i, c := range buckets {
		if c < n/10-300 || c > n/10+300 {
			t.Fatalf("bucket %d = %d, far from %d", i, c, n/10)
		}
	}
}

func TestFutureWaitTimeout(t *testing.T) {
	k := NewKernel()
	f := NewFuture()
	var timedOut, completed bool
	k.Spawn("waiter", func(p *Proc) {
		if _, _, ok := f.WaitTimeout(p, time.Millisecond); ok {
			t.Error("wait should have timed out")
		}
		timedOut = true
		// Second wait outlives the producer's completion.
		v, err, ok := f.WaitTimeout(p, time.Second)
		if !ok || err != nil || v != "done" {
			t.Errorf("second wait: v=%v err=%v ok=%v", v, err, ok)
		}
		completed = true
	})
	k.Spawn("producer", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		f.Complete("done", nil)
	})
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if !timedOut || !completed {
		t.Fatalf("timedOut=%v completed=%v", timedOut, completed)
	}
}
