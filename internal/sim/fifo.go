package sim

import (
	"fmt"
	"time"
)

// FIFOServer models a work-conserving single-server FIFO queue with
// deterministic service: each job occupies the server for a caller-computed
// service time (e.g. size/bandwidth for a link, seek+size/bandwidth for a
// disk). Jobs are served in arrival order; arrival order at equal instants
// follows submission order.
//
// Because service completion times can be computed analytically
// (start = max(now, previous completion)), a FIFOServer needs no process of
// its own — completions are plain kernel events. This keeps per-message cost
// low enough to push tens of millions of simulated transfers through the
// kernel.
type FIFOServer struct {
	k        *Kernel
	name     string
	nextFree Time

	jobs      int64
	busyAccum time.Duration
}

// NewFIFOServer creates a FIFO server attached to k.
func NewFIFOServer(k *Kernel, name string) *FIFOServer {
	return &FIFOServer{k: k, name: name}
}

// Name returns the server's name.
func (s *FIFOServer) Name() string { return s.name }

// Schedule enqueues a job with the given service time and calls fn (in
// kernel context) when it completes. It returns the completion instant.
func (s *FIFOServer) Schedule(service time.Duration, fn func()) Time {
	if service < 0 {
		panic(fmt.Sprintf("sim: fifo %q: negative service time %v", s.name, service))
	}
	start := s.k.now
	if s.nextFree > start {
		start = s.nextFree
	}
	finish := start.Add(service)
	s.nextFree = finish
	s.jobs++
	s.busyAccum += service
	if fn != nil {
		s.k.At(finish, fn)
	}
	return finish
}

// Wait enqueues a job and blocks p until it completes.
func (s *FIFOServer) Wait(p *Proc, service time.Duration) {
	finish := s.Schedule(service, nil)
	p.unparkAt(finish)
	p.park()
}

// NextFree reports the instant at which the server drains its current queue.
func (s *FIFOServer) NextFree() Time { return s.nextFree }

// Jobs reports the number of jobs ever scheduled.
func (s *FIFOServer) Jobs() int64 { return s.jobs }

// BusyTime reports the total service time scheduled so far.
func (s *FIFOServer) BusyTime() time.Duration { return s.busyAccum }

// Utilization reports BusyTime divided by the elapsed virtual time
// (0 if no time has passed).
func (s *FIFOServer) Utilization() float64 {
	if s.k.now == 0 {
		return 0
	}
	u := float64(s.busyAccum) / float64(s.k.now)
	if u > 1 {
		u = 1 // queue still draining past "now"
	}
	return u
}

// Rate converts a size in bytes and a bandwidth in bytes/second into a
// service duration. It is the standard helper for links and disks.
func Rate(size int64, bytesPerSec float64) time.Duration {
	if bytesPerSec <= 0 {
		panic("sim: non-positive bandwidth")
	}
	return time.Duration(float64(size) / bytesPerSec * 1e9)
}
