// Package sim provides a deterministic discrete-event simulation kernel.
//
// Simulated processes are goroutines, but the kernel runs exactly one at a
// time: control passes from the kernel to the process whose wake-up event is
// earliest, and back to the kernel when the process blocks (Sleep, Recv,
// Acquire, ...) or exits. Virtual time advances only between events, so a
// simulation is deterministic: the same inputs produce the same event order
// and the same virtual-time measurements, independent of the Go scheduler.
//
// The kernel is the substrate for every other package in this repository:
// the network model (internal/netsim), the Portals messaging layer
// (internal/portals), storage devices (internal/osd) and all LWFS and PFS
// services are simulated processes exchanging events through it.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"runtime/debug"
	"sort"
	"time"
)

// Time is an instant of virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u (t - u).
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Duration reports the time since the zero instant as a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

func (t Time) String() string { return time.Duration(t).String() }

// MaxTime is the largest representable instant.
const MaxTime = Time(math.MaxInt64)

// event is a scheduled callback. Events with equal instants fire in the
// order they were scheduled (seq breaks ties), which keeps runs reproducible.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	canc *bool // optional cancellation flag; skipped when *canc is true
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event simulation kernel. The zero value is not
// usable; call NewKernel.
type Kernel struct {
	now            Time
	events         eventHeap
	seq            uint64
	procs          map[*Proc]struct{}
	blocked        int // processes parked waiting for an event
	blockedDaemons int // of those, daemons (exempt from deadlock detection)
	done           chan struct{}
	failure        error
	stopped        bool
	tracef         func(format string, args ...interface{})
}

// NewKernel returns a kernel with an empty event queue at virtual time zero.
func NewKernel() *Kernel {
	return &Kernel{
		procs: make(map[*Proc]struct{}),
		done:  make(chan struct{}),
	}
}

// Now reports the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// SetTrace installs a trace function that receives a line per significant
// kernel action. Pass nil to disable tracing.
func (k *Kernel) SetTrace(f func(format string, args ...interface{})) { k.tracef = f }

func (k *Kernel) trace(format string, args ...interface{}) {
	if k.tracef != nil {
		k.tracef(format, args...)
	}
}

// At schedules fn to run in kernel context at instant t. Scheduling in the
// past is an error; fn runs immediately at the current instant instead.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		t = k.now
	}
	k.seq++
	heap.Push(&k.events, &event{at: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d after the current instant.
func (k *Kernel) After(d time.Duration, fn func()) { k.At(k.now.Add(d), fn) }

// afterCancelable schedules fn and returns a cancel func usable before the
// event fires (e.g. timeouts that are beaten by the thing they guard).
func (k *Kernel) afterCancelable(d time.Duration, fn func()) (cancel func()) {
	canceled := false
	k.seq++
	heap.Push(&k.events, &event{at: k.now.Add(d), seq: k.seq, fn: fn, canc: &canceled})
	return func() { canceled = true }
}

// Proc is a simulated process: a goroutine scheduled cooperatively by the
// kernel. All blocking methods (Sleep, Mailbox.Recv, Resource.Acquire, ...)
// must be called from the process's own goroutine.
type Proc struct {
	k      *Kernel
	name   string
	resume chan struct{}
	exited bool
	daemon bool
}

// Kernel returns the kernel this process belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Name returns the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now reports the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Spawn creates a process named name running fn, starting at the current
// instant (or later if the kernel is busy with earlier events). fn runs on
// its own goroutine but under the kernel's cooperative schedule.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, resume: make(chan struct{})}
	k.procs[p] = struct{}{}
	k.At(k.now, func() {
		go func() {
			defer func() {
				if r := recover(); r != nil {
					k.failProc(p, r)
					return
				}
				p.exited = true
				delete(k.procs, p)
				k.done <- struct{}{}
			}()
			<-p.resume // wait for the kernel's first hand-off
			fn(p)
		}()
		// Hand control to the new goroutine.
		p.resume <- struct{}{}
		<-k.done
	})
	return p
}

// SpawnDaemon is Spawn for service processes that run for the lifetime of
// the simulation (RPC workers, lock managers). A daemon blocked forever does
// not count as a deadlock: when only daemons remain parked and the event
// queue is empty, Run returns normally.
func (k *Kernel) SpawnDaemon(name string, fn func(p *Proc)) *Proc {
	p := k.Spawn(name, fn)
	p.daemon = true
	return p
}

// SpawnAt is Spawn but the process starts at instant t.
func (k *Kernel) SpawnAt(t Time, name string, fn func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, resume: make(chan struct{})}
	k.procs[p] = struct{}{}
	k.At(t, func() {
		go func() {
			defer func() {
				if r := recover(); r != nil {
					k.failProc(p, r)
					return
				}
				p.exited = true
				delete(k.procs, p)
				k.done <- struct{}{}
			}()
			<-p.resume
			fn(p)
		}()
		p.resume <- struct{}{}
		<-k.done
	})
	return p
}

// failProc records a process panic so Run can surface it, and unblocks the
// kernel loop.
func (k *Kernel) failProc(p *Proc, r interface{}) {
	if k.failure == nil {
		k.failure = fmt.Errorf("sim: process %q panicked at %v: %v\n%s",
			p.name, k.now, r, debug.Stack())
	}
	p.exited = true
	delete(k.procs, p)
	k.done <- struct{}{}
}

// park blocks the calling process until another event resumes it. It must
// only be called from p's goroutine. The caller is responsible for having
// arranged a wake-up (a timer event, a waiter registration, ...).
func (p *Proc) park() {
	p.k.blocked++
	if p.daemon {
		p.k.blockedDaemons++
	}
	p.k.done <- struct{}{}
	<-p.resume
}

// unpark schedules p to resume at the current instant. Called from kernel
// context or from another process's execution (which is also, transitively,
// kernel context).
func (p *Proc) unpark() {
	k := p.k
	k.At(k.now, func() {
		if p.exited {
			return
		}
		k.blocked--
		if p.daemon {
			k.blockedDaemons--
		}
		p.resume <- struct{}{}
		<-k.done
	})
}

// unparkAt schedules p to resume at instant t.
func (p *Proc) unparkAt(t Time) {
	k := p.k
	k.At(t, func() {
		if p.exited {
			return
		}
		k.blocked--
		if p.daemon {
			k.blockedDaemons--
		}
		p.resume <- struct{}{}
		<-k.done
	})
}

// Sleep suspends the process for duration d of virtual time.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.unparkAt(p.k.now.Add(d))
	p.park()
}

// Yield lets every event scheduled at the current instant (so far) run
// before the process continues.
func (p *Proc) Yield() { p.Sleep(0) }

// ErrDeadlock is returned (wrapped) by Run when processes remain blocked but
// no events are pending.
type DeadlockError struct {
	At      Time
	Blocked []string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: %d process(es) blocked forever: %v",
		e.At, len(e.Blocked), e.Blocked)
}

// Run drains the event queue until it is empty or until limit is reached
// (use MaxTime for no limit). It returns an error if any process panicked or
// if the simulation deadlocked (blocked processes with no pending events).
func (k *Kernel) Run(limit Time) error {
	for len(k.events) > 0 {
		if k.failure != nil {
			return k.failure
		}
		e := heap.Pop(&k.events).(*event)
		if e.canc != nil && *e.canc {
			continue
		}
		if e.at > limit {
			// Push back so a later Run can continue.
			heap.Push(&k.events, e)
			k.now = limit
			return nil
		}
		k.now = e.at
		e.fn()
	}
	if k.failure != nil {
		return k.failure
	}
	if k.blocked > k.blockedDaemons {
		var names []string
		for p := range k.procs {
			if !p.exited && !p.daemon {
				names = append(names, p.name)
			}
		}
		sort.Strings(names)
		return &DeadlockError{At: k.now, Blocked: names}
	}
	return nil
}

// MustRun is Run(MaxTime) but panics on error. Convenient in examples.
func (k *Kernel) MustRun() {
	if err := k.Run(MaxTime); err != nil {
		panic(err)
	}
}
