// Package sim provides a deterministic discrete-event simulation kernel.
//
// Simulated processes are goroutines, but the kernel runs exactly one at a
// time: control passes from the kernel to the process whose wake-up event is
// earliest, and back to the kernel when the process blocks (Sleep, Recv,
// Acquire, ...) or exits. Virtual time advances only between events, so a
// simulation is deterministic: the same inputs produce the same event order
// and the same virtual-time measurements, independent of the Go scheduler.
//
// The kernel is the substrate for every other package in this repository:
// the network model (internal/netsim), the Portals messaging layer
// (internal/portals), storage devices (internal/osd) and all LWFS and PFS
// services are simulated processes exchanging events through it.
//
// # Scalability (DESIGN.md §4.12)
//
// The kernel is built to carry tens of thousands of simulated processes and
// tens of millions of events per run:
//
//   - Pending events live in a typed 4-ary min-heap of value structs
//     (heapEntry carries no pointers, so the GC never scans the queue) keyed
//     by (instant, seq); seq breaks ties so runs stay reproducible.
//   - Event bodies (callback, process) live in a slot arena recycled through
//     a free list: steady-state scheduling performs no allocation.
//   - Events scheduled at the current instant — every unpark, Yield, and
//     At(now) — bypass the heap through a FIFO ring; the seq comparison
//     against the heap top preserves global submission order exactly.
//   - Canceled timeouts (afterCancelable) release their arena slot
//     immediately and leave a lazily-deleted heap entry behind; when
//     tombstones outnumber half the heap they are compacted away in one
//     filter+heapify pass.
//   - The dispatch loop itself migrates between goroutines: a parking
//     process runs the loop inline and hands control directly to the next
//     runnable process (one channel handoff per switch instead of a
//     round-trip through a central scheduler goroutine).
package sim

import (
	"fmt"
	"math"
	"runtime/debug"
	"sort"
	"time"
)

// Time is an instant of virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u (t - u).
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Duration reports the time since the zero instant as a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

func (t Time) String() string { return time.Duration(t).String() }

// MaxTime is the largest representable instant.
const MaxTime = Time(math.MaxInt64)

// Event kinds. A dispatched event either runs a plain callback in kernel
// context (evFn), resumes a parked process (evResume), or starts a freshly
// spawned one (evStart).
const (
	evFn uint8 = iota
	evResume
	evStart
)

// eventSlot is the arena-resident body of a pending heap event. Slots are
// recycled through an intrusive free list; gen increments on every release
// so stale heap entries and cancel handles can detect reuse.
type eventSlot struct {
	fn   func()
	proc *Proc
	gen  uint64
	next int32 // free-list link
	kind uint8
}

// heapEntry is one element of the pending-event priority queue. It is a
// pure value — no pointers — so the queue costs the garbage collector
// nothing to scan. Entries whose gen no longer matches their slot are
// tombstones of canceled or fired events and are skipped on pop.
type heapEntry struct {
	at  Time
	seq uint64
	gen uint64
	id  int32
}

func entryLess(a, b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// ringEntry is a same-instant event: it fires at the current virtual time,
// so it never enters the heap and cannot be canceled.
type ringEntry struct {
	seq  uint64
	fn   func()
	proc *Proc
	kind uint8
}

// cancelHandle identifies a cancelable heap event without allocating a
// closure. The zero... an id of -1 means "nothing to cancel".
type cancelHandle struct {
	gen uint64
	id  int32
}

// Kernel is a discrete-event simulation kernel. The zero value is not
// usable; call NewKernel.
type Kernel struct {
	now   Time
	limit Time
	seq   uint64

	// Pending events: heap + arena for future instants, ring for "now".
	slots []eventSlot
	free  int32 // free-list head, -1 when empty
	heap  []heapEntry
	tombs int // canceled entries still lingering in heap

	ring  []ringEntry
	rhead int
	rlen  int

	procs          map[*Proc]struct{}
	blocked        int // processes parked waiting for an event
	blockedDaemons int // of those, daemons (exempt from deadlock detection)

	// driver wakes the Run caller when the dispatch loop winds down while a
	// process goroutine holds it.
	driver  chan struct{}
	failure error
	tracef  func(format string, args ...interface{})

	nScheduled  uint64
	nDispatched uint64
	nCanceled   uint64
}

// NewKernel returns a kernel with an empty event queue at virtual time zero.
func NewKernel() *Kernel {
	return &Kernel{
		procs:  make(map[*Proc]struct{}),
		free:   -1,
		driver: make(chan struct{}, 1),
	}
}

// Now reports the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// SetTrace installs a trace function that receives a line per significant
// kernel action. Pass nil to disable tracing.
func (k *Kernel) SetTrace(f func(format string, args ...interface{})) { k.tracef = f }

func (k *Kernel) trace(format string, args ...interface{}) {
	if k.tracef != nil {
		k.tracef(format, args...)
	}
}

// EventsScheduled reports the total number of events ever scheduled.
func (k *Kernel) EventsScheduled() uint64 { return k.nScheduled }

// EventsDispatched reports the total number of events dispatched.
func (k *Kernel) EventsDispatched() uint64 { return k.nDispatched }

// EventsCanceled reports how many scheduled events were canceled before
// firing (timeouts beaten by the operation they guarded).
func (k *Kernel) EventsCanceled() uint64 { return k.nCanceled }

// EventPoolSize reports the size of the event arena (live + free slots): the
// high-water mark of simultaneously pending heap events.
func (k *Kernel) EventPoolSize() int { return len(k.slots) }

// QueueLen reports the number of live pending events (heap minus tombstones,
// plus the same-instant ring).
func (k *Kernel) QueueLen() int { return len(k.heap) - k.tombs + k.rlen }

// --- event queue internals -------------------------------------------------

func (k *Kernel) allocSlot() int32 {
	if k.free >= 0 {
		id := k.free
		k.free = k.slots[id].next
		return id
	}
	k.slots = append(k.slots, eventSlot{})
	return int32(len(k.slots) - 1)
}

func (k *Kernel) releaseSlot(id int32) {
	s := &k.slots[id]
	s.fn = nil
	s.proc = nil
	s.gen++
	s.next = k.free
	k.free = id
}

func (k *Kernel) heapPush(e heapEntry) {
	h := append(k.heap, e)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !entryLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	k.heap = h
}

func (k *Kernel) siftDown(i int) {
	h := k.heap
	n := len(h)
	for {
		c := i<<2 + 1
		if c >= n {
			return
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if entryLess(h[j], h[m]) {
				m = j
			}
		}
		if !entryLess(h[m], h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

func (k *Kernel) heapPop() heapEntry {
	h := k.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	k.heap = h[:n]
	if n > 1 {
		k.siftDown(0)
	}
	return top
}

// prune discards tombstoned entries from the heap top so peeks see a live
// event (or an empty heap).
func (k *Kernel) prune() {
	for len(k.heap) > 0 {
		e := k.heap[0]
		if k.slots[e.id].gen == e.gen {
			return
		}
		k.heapPop()
		k.tombs--
	}
}

// compact removes every tombstoned entry and re-heapifies. Triggered when
// canceled timeouts outnumber half the heap.
func (k *Kernel) compact() {
	live := k.heap[:0]
	for _, e := range k.heap {
		if k.slots[e.id].gen == e.gen {
			live = append(live, e)
		}
	}
	k.heap = live
	for i := (len(live) - 2) >> 2; i >= 0; i-- {
		k.siftDown(i)
	}
	k.tombs = 0
}

func (k *Kernel) ringPush(e ringEntry) {
	if k.rlen == len(k.ring) {
		k.growRing()
	}
	k.ring[(k.rhead+k.rlen)&(len(k.ring)-1)] = e
	k.rlen++
}

func (k *Kernel) growRing() {
	n := len(k.ring) * 2
	if n == 0 {
		n = 64
	}
	nr := make([]ringEntry, n)
	for i := 0; i < k.rlen; i++ {
		nr[i] = k.ring[(k.rhead+i)&(len(k.ring)-1)]
	}
	k.ring = nr
	k.rhead = 0
}

func (k *Kernel) ringPop() ringEntry {
	e := k.ring[k.rhead]
	k.ring[k.rhead] = ringEntry{}
	k.rhead = (k.rhead + 1) & (len(k.ring) - 1)
	k.rlen--
	return e
}

// schedule is the single entry point for future work. Instants at or before
// the current time go to the same-instant ring; later instants get an arena
// slot and a heap entry.
func (k *Kernel) schedule(t Time, fn func(), proc *Proc, kind uint8) {
	k.seq++
	k.nScheduled++
	if t <= k.now {
		k.ringPush(ringEntry{seq: k.seq, fn: fn, proc: proc, kind: kind})
		return
	}
	id := k.allocSlot()
	s := &k.slots[id]
	s.fn, s.proc, s.kind = fn, proc, kind
	k.heapPush(heapEntry{at: t, seq: k.seq, id: id, gen: s.gen})
}

// scheduleCancelable is schedule, but always through the heap (ring entries
// cannot be canceled) and returning a handle for cancel.
func (k *Kernel) scheduleCancelable(t Time, fn func()) cancelHandle {
	if t < k.now {
		t = k.now
	}
	k.seq++
	k.nScheduled++
	id := k.allocSlot()
	s := &k.slots[id]
	s.fn, s.kind = fn, evFn
	k.heapPush(heapEntry{at: t, seq: k.seq, id: id, gen: s.gen})
	return cancelHandle{id: id, gen: s.gen}
}

// cancel revokes a pending cancelable event. The slot returns to the pool
// immediately; the heap entry becomes a tombstone, compacted away when
// tombstones outnumber half the heap. Canceling an event that already fired
// (or was already canceled) is a no-op: gen has moved on.
func (k *Kernel) cancel(h cancelHandle) {
	if h.id < 0 {
		return
	}
	s := &k.slots[h.id]
	if s.gen != h.gen {
		return
	}
	k.releaseSlot(h.id)
	k.tombs++
	k.nCanceled++
	if k.tombs > 64 && k.tombs*2 > len(k.heap) {
		k.compact()
	}
}

// At schedules fn to run in kernel context at instant t. Scheduling in the
// past is an error; fn runs immediately at the current instant instead.
func (k *Kernel) At(t Time, fn func()) { k.schedule(t, fn, nil, evFn) }

// After schedules fn to run d after the current instant.
func (k *Kernel) After(d time.Duration, fn func()) { k.schedule(k.now.Add(d), fn, nil, evFn) }

// afterCancelable schedules fn and returns a cancel func usable before the
// event fires (e.g. timeouts that are beaten by the thing they guard).
// Hot paths (Mailbox.RecvTimeout) use scheduleCancelable/cancel directly to
// avoid the closure.
func (k *Kernel) afterCancelable(d time.Duration, fn func()) (cancel func()) {
	h := k.scheduleCancelable(k.now.Add(d), fn)
	return func() { k.cancel(h) }
}

// Proc is a simulated process: a goroutine scheduled cooperatively by the
// kernel. All blocking methods (Sleep, Mailbox.Recv, Resource.Acquire, ...)
// must be called from the process's own goroutine.
type Proc struct {
	k      *Kernel
	name   string
	fn     func(p *Proc)
	resume chan struct{}
	exited bool
	daemon bool

	// Pooled waiter records: a process blocks on at most one thing at a
	// time, so every Mailbox/Resource wait reuses these instead of
	// allocating (see sync.go).
	mw        mboxWaiter
	rw        resWaiter
	mwTimeout func() // pre-built RecvTimeout callback, created once
}

// Kernel returns the kernel this process belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Name returns the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now reports the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Spawn creates a process named name running fn, starting at the current
// instant (or later if the kernel is busy with earlier events). fn runs on
// its own goroutine but under the kernel's cooperative schedule.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	return k.SpawnAt(k.now, name, fn)
}

// SpawnDaemon is Spawn for service processes that run for the lifetime of
// the simulation (RPC workers, lock managers). A daemon blocked forever does
// not count as a deadlock: when only daemons remain parked and the event
// queue is empty, Run returns normally.
func (k *Kernel) SpawnDaemon(name string, fn func(p *Proc)) *Proc {
	p := k.Spawn(name, fn)
	p.daemon = true
	return p
}

// SpawnAt is Spawn but the process starts at instant t. The goroutine is
// created lazily when the start event fires.
func (k *Kernel) SpawnAt(t Time, name string, fn func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, fn: fn, resume: make(chan struct{}, 1)}
	k.procs[p] = struct{}{}
	k.schedule(t, nil, p, evStart)
	return p
}

// main is the body of a process goroutine: wait for the kernel's first
// hand-off, run the user function, then pass the dispatch loop on and die.
func (p *Proc) main() {
	defer func() {
		if r := recover(); r != nil {
			p.k.failProc(p, r)
		} else {
			p.exited = true
			delete(p.k.procs, p)
		}
		p.k.procLoop(p, true)
	}()
	<-p.resume
	p.fn(p)
}

// failProc records a process panic so Run can surface it.
func (k *Kernel) failProc(p *Proc, r interface{}) {
	if k.failure == nil {
		k.failure = fmt.Errorf("sim: process %q panicked at %v: %v\n%s",
			p.name, k.now, r, debug.Stack())
	}
	p.exited = true
	delete(k.procs, p)
}

// park blocks the calling process until another event resumes it: the
// process runs the dispatch loop inline until its own resume event fires or
// the loop is handed to another goroutine. It must only be called from p's
// goroutine, and the caller is responsible for having arranged a wake-up (a
// timer event, a waiter registration, ...).
func (p *Proc) park() {
	k := p.k
	k.blocked++
	if p.daemon {
		k.blockedDaemons++
	}
	k.procLoop(p, false)
}

// unpark schedules p to resume at the current instant. Called from kernel
// context or from another process's execution (which is also, transitively,
// kernel context).
func (p *Proc) unpark() { p.k.schedule(p.k.now, nil, p, evResume) }

// unparkAt schedules p to resume at instant t.
func (p *Proc) unparkAt(t Time) { p.k.schedule(t, nil, p, evResume) }

// Sleep suspends the process for duration d of virtual time.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.unparkAt(p.k.now.Add(d))
	p.park()
}

// Yield lets every event scheduled at the current instant (so far) run
// before the process continues.
func (p *Proc) Yield() { p.Sleep(0) }

// procLoop runs the dispatch loop on a process goroutine, converting a
// panic inside an event callback into a simulation failure surfaced by Run.
// (A panic in process code itself is caught by main's recover instead; this
// one only fires for kernel-context callbacks that happened to be hosted on
// this goroutine.)
func (k *Kernel) procLoop(p *Proc, exiting bool) {
	defer func() {
		if r := recover(); r != nil {
			if k.failure == nil {
				k.failure = fmt.Errorf("sim: event callback panicked at %v: %v\n%s",
					k.now, r, debug.Stack())
			}
			k.driver <- struct{}{}
			// The simulation is dead; so is this goroutine.
			select {}
		}
	}()
	k.loop(p, exiting)
}

// windDown returns control to the Run caller: the queue is empty, the time
// limit was reached, or the simulation failed.
func (k *Kernel) windDown(self *Proc, exiting bool) {
	if self == nil {
		return // the driver holds the loop; Run just returns
	}
	k.driver <- struct{}{}
	if exiting {
		return // goroutine ends
	}
	// Stay parked: a later Run may still dispatch our resume event.
	<-self.resume
}

// loop is the dispatch loop. Exactly one goroutine runs it at a time — the
// Run caller (self == nil) or a parked/exiting process — and it migrates by
// direct channel handoff: dispatching a resume for another process sends it
// the baton and blocks (or ends, when exiting) the current goroutine.
//
// Returning from loop means: for the driver, the run wound down; for a
// process, either its own resume event fired (continue user code) or it
// handed the baton on and was later resumed.
func (k *Kernel) loop(self *Proc, exiting bool) {
	for {
		if k.failure != nil {
			k.windDown(self, exiting)
			return
		}
		var (
			fn   func()
			proc *Proc
			kind uint8
		)
		k.prune()
		if k.rlen > 0 {
			// The ring holds events at the current instant; the heap may
			// hold an earlier-submitted event at this same instant.
			fromHeap := false
			if len(k.heap) > 0 {
				t := k.heap[0]
				if t.at == k.now && t.seq < k.ring[k.rhead].seq {
					fromHeap = true
				}
			}
			if fromHeap {
				e := k.heapPop()
				s := &k.slots[e.id]
				fn, proc, kind = s.fn, s.proc, s.kind
				k.releaseSlot(e.id)
			} else {
				e := k.ringPop()
				fn, proc, kind = e.fn, e.proc, e.kind
			}
		} else if len(k.heap) > 0 {
			t := k.heap[0]
			if t.at > k.limit {
				// Leave the event in place so a later Run can continue.
				k.now = k.limit
				k.windDown(self, exiting)
				return
			}
			k.now = t.at
			e := k.heapPop()
			s := &k.slots[e.id]
			fn, proc, kind = s.fn, s.proc, s.kind
			k.releaseSlot(e.id)
		} else {
			k.windDown(self, exiting)
			return
		}
		k.nDispatched++
		if kind == evFn {
			fn()
			continue
		}
		q := proc
		if q.exited {
			continue // stale resume for a process that already exited
		}
		if kind == evResume {
			k.blocked--
			if q.daemon {
				k.blockedDaemons--
			}
			if q == self {
				return // our own wake-up: keep the baton, continue user code
			}
		} else { // evStart
			go q.main()
		}
		q.resume <- struct{}{}
		if exiting {
			return // baton handed on; this goroutine ends
		}
		if self == nil {
			<-k.driver // the driver waits for wind-down
		} else {
			<-self.resume // wait for our own resume event
		}
		return
	}
}

// ErrDeadlock is returned (wrapped) by Run when processes remain blocked but
// no events are pending.
type DeadlockError struct {
	At      Time
	Blocked []string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: %d process(es) blocked forever: %v",
		e.At, len(e.Blocked), e.Blocked)
}

// Run drains the event queue until it is empty or until limit is reached
// (use MaxTime for no limit). It returns an error if any process panicked or
// if the simulation deadlocked (blocked processes with no pending events).
func (k *Kernel) Run(limit Time) error {
	k.limit = limit
	k.loop(nil, false)
	if k.failure != nil {
		return k.failure
	}
	if k.rlen == 0 && len(k.heap) == 0 && k.blocked > k.blockedDaemons {
		var names []string
		for p := range k.procs {
			if !p.exited && !p.daemon {
				names = append(names, p.name)
			}
		}
		sort.Strings(names)
		return &DeadlockError{At: k.now, Blocked: names}
	}
	return nil
}

// MustRun is Run(MaxTime) but panics on error. Convenient in examples.
func (k *Kernel) MustRun() {
	if err := k.Run(MaxTime); err != nil {
		panic(err)
	}
}
