package sim

import (
	"testing"
	"time"
)

// These benchmarks measure the simulator itself (wall-clock cost per
// simulated action), not any simulated system: they bound how large an
// experiment the kernel can push through per second of real time.

func BenchmarkEventDispatch(b *testing.B) {
	k := NewKernel()
	n := 0
	for i := 0; i < b.N; i++ {
		k.After(time.Duration(i), func() { n++ })
	}
	b.ResetTimer()
	if err := k.Run(MaxTime); err != nil {
		b.Fatal(err)
	}
	if n != b.N {
		b.Fatalf("ran %d events", n)
	}
}

func BenchmarkProcessSwitch(b *testing.B) {
	// Ping-pong between two processes: two parks/unparks per iteration.
	k := NewKernel()
	ping := NewMailbox(k, "ping")
	pong := NewMailbox(k, "pong")
	k.Spawn("a", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			ping.Send(i)
			pong.Recv(p)
		}
	})
	k.Spawn("b", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			ping.Recv(p)
			pong.Send(i)
		}
	})
	b.ResetTimer()
	if err := k.Run(MaxTime); err != nil {
		b.Fatal(err)
	}
}

// TestAfterDispatchZeroAlloc guards the kernel's steady-state hot path:
// once the heap, arena and free list are warm, scheduling and dispatching a
// timer event must not allocate (pool hits only). This is the property that
// lets a 10k-client sweep run tens of millions of events without GC churn.
func TestAfterDispatchZeroAlloc(t *testing.T) {
	k := NewKernel()
	fired := 0
	fn := func() { fired++ }
	// Warm the arena, heap and ring.
	for i := 0; i < 128; i++ {
		k.After(time.Duration(i)*time.Microsecond, fn)
	}
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		k.After(time.Microsecond, fn)
		if err := k.Run(MaxTime); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state After+dispatch allocates %.1f objects/op, want 0", avg)
	}
}

// TestTimeoutChurnZeroAlloc guards the cancelable-timeout path that every
// RPC retry and breaker probe rides: arming a RecvTimeout that is beaten by
// the message (timeout canceled, slot recycled) must not allocate in steady
// state.
func TestTimeoutChurnZeroAlloc(t *testing.T) {
	k := NewKernel()
	m := NewMailbox(k, "churn")
	var avg float64
	k.Spawn("recv", func(p *Proc) {
		// Warm up: pre-build the proc's pooled timeout closure and waiter.
		m.SendAfter(time.Microsecond, 1)
		if _, ok := m.RecvTimeout(p, time.Millisecond); !ok {
			t.Error("warmup recv timed out")
		}
		avg = testing.AllocsPerRun(200, func() {
			m.SendAfter(time.Microsecond, nil)
			if _, ok := m.RecvTimeout(p, time.Millisecond); !ok {
				t.Error("recv timed out")
			}
		})
	})
	if err := k.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if avg > 1 {
		// SendAfter itself allocates its delivery closure; the
		// RecvTimeout/cancel cycle must add nothing on top.
		t.Fatalf("steady-state RecvTimeout churn allocates %.1f objects/op, want <=1", avg)
	}
}

func BenchmarkFIFOServerSchedule(b *testing.B) {
	k := NewKernel()
	s := NewFIFOServer(k, "s")
	for i := 0; i < b.N; i++ {
		s.Schedule(time.Microsecond, nil)
	}
	b.ResetTimer()
	if err := k.Run(MaxTime); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkSpawnExit(b *testing.B) {
	k := NewKernel()
	for i := 0; i < b.N; i++ {
		k.Spawn("p", func(p *Proc) {})
	}
	b.ResetTimer()
	if err := k.Run(MaxTime); err != nil {
		b.Fatal(err)
	}
}
