package sim

import (
	"testing"
	"time"
)

// These benchmarks measure the simulator itself (wall-clock cost per
// simulated action), not any simulated system: they bound how large an
// experiment the kernel can push through per second of real time.

func BenchmarkEventDispatch(b *testing.B) {
	k := NewKernel()
	n := 0
	for i := 0; i < b.N; i++ {
		k.After(time.Duration(i), func() { n++ })
	}
	b.ResetTimer()
	if err := k.Run(MaxTime); err != nil {
		b.Fatal(err)
	}
	if n != b.N {
		b.Fatalf("ran %d events", n)
	}
}

func BenchmarkProcessSwitch(b *testing.B) {
	// Ping-pong between two processes: two parks/unparks per iteration.
	k := NewKernel()
	ping := NewMailbox(k, "ping")
	pong := NewMailbox(k, "pong")
	k.Spawn("a", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			ping.Send(i)
			pong.Recv(p)
		}
	})
	k.Spawn("b", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			ping.Recv(p)
			pong.Send(i)
		}
	})
	b.ResetTimer()
	if err := k.Run(MaxTime); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkFIFOServerSchedule(b *testing.B) {
	k := NewKernel()
	s := NewFIFOServer(k, "s")
	for i := 0; i < b.N; i++ {
		s.Schedule(time.Microsecond, nil)
	}
	b.ResetTimer()
	if err := k.Run(MaxTime); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkSpawnExit(b *testing.B) {
	k := NewKernel()
	for i := 0; i < b.N; i++ {
		k.Spawn("p", func(p *Proc) {})
	}
	b.ResetTimer()
	if err := k.Run(MaxTime); err != nil {
		b.Fatal(err)
	}
}
