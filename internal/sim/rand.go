package sim

import "time"

// Rand is a small deterministic pseudo-random generator (SplitMix64). Every
// source of randomness inside a simulation — fault-injection drop decisions,
// retry-backoff jitter, placement variation — must draw from a seeded Rand
// rather than math/rand's global state, so that a run is a pure function of
// its seeds: random choices are consumed in kernel event order, and two runs
// with the same seeds make identical choices at identical virtual instants.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. Equal seeds yield equal
// sequences; distinct seeds yield (for all practical purposes) independent
// streams.
func NewRand(seed int64) *Rand {
	return &Rand{state: uint64(seed)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D}
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Int63n returns a uniform value in [0, n). n must be positive.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive bound")
	}
	return int64(r.Uint64() % uint64(n))
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *Rand) Intn(n int) int { return int(r.Int63n(int64(n))) }

// Duration returns a uniform duration in [0, max); zero if max <= 0.
func (r *Rand) Duration(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	return time.Duration(r.Int63n(int64(max)))
}
