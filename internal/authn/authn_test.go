package authn_test

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"lwfs/internal/authn"
	"lwfs/internal/sim"
	"lwfs/internal/testrig"
)

func TestLoginIssuesCredential(t *testing.T) {
	r := testrig.New(2)
	c := r.AuthnClient(1)
	r.Go("client", func(p *sim.Proc) {
		cred, err := c.Login(p, "alice", testrig.Secret("alice"))
		if err != nil {
			t.Errorf("login: %v", err)
			return
		}
		if cred.Zero() {
			t.Error("zero credential")
		}
		if err := c.Verify(p, cred); err != nil {
			t.Errorf("verify fresh credential: %v", err)
		}
	})
	r.Run(t)
}

func TestBadLoginRejected(t *testing.T) {
	r := testrig.New(2)
	c := r.AuthnClient(1)
	r.Go("client", func(p *sim.Proc) {
		if _, err := c.Login(p, "alice", "wrong"); !errors.Is(err, authn.ErrBadLogin) {
			t.Errorf("bad secret: %v", err)
		}
		if _, err := c.Login(p, "mallory", "x"); !errors.Is(err, authn.ErrBadLogin) {
			t.Errorf("unknown user: %v", err)
		}
	})
	r.Run(t)
}

func TestForgedCredentialRejected(t *testing.T) {
	r := testrig.New(2)
	c := r.AuthnClient(1)
	r.Go("client", func(p *sim.Proc) {
		forged := authn.Credential{Expires: sim.MaxTime}
		forged.Token[0] = 0xEE
		if err := c.Verify(p, forged); !errors.Is(err, authn.ErrInvalidCred) {
			t.Errorf("forged credential verified: %v", err)
		}
	})
	r.Run(t)
}

func TestCredentialTransferable(t *testing.T) {
	// A credential obtained on node 1 verifies when presented from node 2:
	// fully transferable, as the paper requires for distributed apps
	// sharing one identity.
	r := testrig.New(3)
	c1 := r.AuthnClient(1)
	c2 := r.AuthnClient(2)
	handoff := sim.NewMailbox(r.K, "handoff")
	r.Go("proc1", func(p *sim.Proc) {
		cred, err := c1.Login(p, "bob", testrig.Secret("bob"))
		if err != nil {
			t.Errorf("login: %v", err)
			return
		}
		handoff.Send(cred)
	})
	r.Go("proc2", func(p *sim.Proc) {
		cred := handoff.Recv(p).(authn.Credential)
		if err := c2.Verify(p, cred); err != nil {
			t.Errorf("transferred credential rejected: %v", err)
		}
	})
	r.Run(t)
}

func TestRevokedCredentialRejected(t *testing.T) {
	r := testrig.New(2)
	c := r.AuthnClient(1)
	r.Go("client", func(p *sim.Proc) {
		cred, err := c.Login(p, "alice", testrig.Secret("alice"))
		if err != nil {
			t.Fatalf("login: %v", err)
		}
		if err := c.Revoke(p, cred); err != nil {
			t.Fatalf("revoke: %v", err)
		}
		if err := c.Verify(p, cred); !errors.Is(err, authn.ErrRevokedCred) {
			t.Errorf("revoked credential: %v", err)
		}
		if _, err := c.Identity(p, cred); !errors.Is(err, authn.ErrRevokedCred) {
			t.Errorf("identity of revoked credential: %v", err)
		}
	})
	r.Run(t)
}

func TestCredentialExpires(t *testing.T) {
	r := testrig.New(2)
	c := r.AuthnClient(1)
	r.Go("client", func(p *sim.Proc) {
		cred, err := c.Login(p, "alice", testrig.Secret("alice"))
		if err != nil {
			t.Fatalf("login: %v", err)
		}
		p.Sleep(9 * time.Hour) // default lifetime is 8h
		if err := c.Verify(p, cred); !errors.Is(err, authn.ErrExpiredCred) {
			t.Errorf("expired credential: %v", err)
		}
	})
	r.Run(t)
}

func TestIdentityResolvesPrincipal(t *testing.T) {
	r := testrig.New(2)
	c := r.AuthnClient(1)
	r.Go("client", func(p *sim.Proc) {
		cred, err := c.Login(p, "carol", testrig.Secret("carol"))
		if err != nil {
			t.Fatalf("login: %v", err)
		}
		user, err := c.Identity(p, cred)
		if err != nil || user != "carol" {
			t.Errorf("identity = %q, %v", user, err)
		}
	})
	r.Run(t)
}

func TestDistinctLoginsDistinctTokens(t *testing.T) {
	r := testrig.New(2)
	c := r.AuthnClient(1)
	r.Go("client", func(p *sim.Proc) {
		a, err1 := c.Login(p, "alice", testrig.Secret("alice"))
		b, err2 := c.Login(p, "alice", testrig.Secret("alice"))
		if err1 != nil || err2 != nil {
			t.Errorf("logins: %v %v", err1, err2)
			return
		}
		if a.Token == b.Token {
			t.Error("two logins produced the same token")
		}
	})
	r.Run(t)
}

// Property: random tokens never verify — forging requires guessing the
// service's HMAC output.
func TestForgeryResistanceProperty(t *testing.T) {
	prop := func(tok [32]byte) bool {
		r := testrig.New(2)
		c := r.AuthnClient(1)
		rejected := false
		r.Go("client", func(p *sim.Proc) {
			// Log in once so the service has state to confuse with.
			if _, err := c.Login(p, "alice", testrig.Secret("alice")); err != nil {
				return
			}
			err := c.Verify(p, authn.Credential{Token: tok, Expires: sim.MaxTime})
			rejected = errors.Is(err, authn.ErrInvalidCred)
		})
		if err := r.K.Run(sim.MaxTime); err != nil {
			return false
		}
		return rejected
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
