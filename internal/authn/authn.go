// Package authn implements the LWFS authentication service (paper §3.1.2,
// Figure 3): the component that interfaces with an external authentication
// mechanism (Kerberos in the paper; an in-simulation Realm here) and issues
// credentials — opaque, fully transferable proofs of user identity with a
// bounded lifetime.
//
// A credential's contents are opaque to its holder: the token is an HMAC
// that only the issuing authentication service can verify, so holding (or
// copying) a credential conveys exactly the right to act as the
// authenticated principal, and forging one requires guessing the HMAC.
// Credentials may be revoked at any time (application exit, compromise),
// which invalidates every verification thereafter.
package authn

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"lwfs/internal/metrics"
	"lwfs/internal/netsim"
	"lwfs/internal/portals"
	"lwfs/internal/sim"
)

// Portal is the well-known portal index of the authentication service.
const Portal portals.Index = 10

// Wire sizes (bytes) for the authentication protocol.
const (
	credWireSize = 96
	reqWireSize  = 128
)

// Principal is a user identity known to the external mechanism.
type Principal string

// Credential is proof of authentication. It is a value type and fully
// transferable: an application may hand it to every process acting on the
// principal's behalf (paper: a distributed application sharing a single
// identity). Token is opaque; only the issuing service can verify it.
type Credential struct {
	Token   [32]byte
	Expires sim.Time
}

// Zero reports whether the credential is the zero value.
func (c Credential) Zero() bool { return c.Token == [32]byte{} }

// Realm is the external authentication mechanism (the Kerberos stand-in):
// a registry of principals and their secrets.
type Realm struct {
	secrets map[Principal]string
}

// NewRealm creates an empty realm.
func NewRealm() *Realm { return &Realm{secrets: make(map[Principal]string)} }

// Register adds a principal with its secret.
func (r *Realm) Register(user Principal, secret string) { r.secrets[user] = secret }

// check validates a login attempt.
func (r *Realm) check(user Principal, secret string) bool {
	want, ok := r.secrets[user]
	return ok && want == secret
}

// Errors reported by the service.
var (
	ErrBadLogin    = errors.New("authn: unknown principal or bad secret")
	ErrInvalidCred = errors.New("authn: invalid credential")
	ErrExpiredCred = errors.New("authn: credential expired")
	ErrRevokedCred = errors.New("authn: credential revoked")
)

// Config tunes the service.
type Config struct {
	OpCost   time.Duration // CPU time per request (HMAC + table lookup)
	Lifetime time.Duration // credential lifetime
}

// DefaultConfig returns the calibrated defaults.
func DefaultConfig() Config {
	return Config{OpCost: 30 * time.Microsecond, Lifetime: 8 * time.Hour}
}

type credRecord struct {
	user    Principal
	expires sim.Time
	revoked bool
}

// Service is the authentication server process.
type Service struct {
	k     *sim.Kernel
	cfg   Config
	realm *Realm
	node  netsim.NodeID
	key   []byte
	creds map[[32]byte]*credRecord
	nonce uint64

	logins, verifies, revokes *metrics.Counter
}

// request bodies

type loginReq struct {
	User   Principal
	Secret string
}

type verifyReq struct{ Cred Credential }

type revokeReq struct{ Cred Credential }

// Start binds the authentication service to ep's node at the well-known
// portal and returns it.
func Start(ep *portals.Endpoint, realm *Realm, cfg Config) *Service {
	s := &Service{
		k:     ep.Kernel(),
		cfg:   cfg,
		realm: realm,
		node:  ep.Node(),
		key:   []byte("authn-service-instance-key"),
		creds: make(map[[32]byte]*credRecord),
	}
	an := ep.Metrics().Scope("authn")
	s.logins = an.Counter("logins")
	s.verifies = an.Counter("verifies")
	s.revokes = an.Counter("revokes")
	portals.Serve(ep, Portal, "authn", 2, s.handle)
	return s
}

// Node returns the node the service runs on.
func (s *Service) Node() netsim.NodeID { return s.node }

// Stats reports operation counts.
// Deprecated: thin read of `authn.logins|verifies|revokes`; prefer
// Registry.Snapshot().
func (s *Service) Stats() (logins, verifies, revokes int64) {
	return s.logins.Value(), s.verifies.Value(), s.revokes.Value()
}

func (s *Service) handle(p *sim.Proc, from netsim.NodeID, req interface{}) (interface{}, error) {
	p.Sleep(s.cfg.OpCost)
	switch r := req.(type) {
	case loginReq:
		return s.login(p, r)
	case verifyReq:
		s.verifies.Inc()
		return nil, s.check(r.Cred)
	case identityReq:
		s.verifies.Inc()
		user, err := s.identity(r.Cred)
		if err != nil {
			return nil, err
		}
		return VerifyResult{User: user}, nil
	case revokeReq:
		s.revokes.Inc()
		rec, ok := s.creds[r.Cred.Token]
		if !ok {
			return nil, ErrInvalidCred
		}
		rec.revoked = true
		return nil, nil
	default:
		return nil, fmt.Errorf("authn: unknown request %T", req)
	}
}

func (s *Service) login(p *sim.Proc, r loginReq) (interface{}, error) {
	if !s.realm.check(r.User, r.Secret) {
		return nil, ErrBadLogin
	}
	s.logins.Inc()
	s.nonce++
	mac := hmac.New(sha256.New, s.key)
	mac.Write([]byte(r.User))
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], s.nonce)
	mac.Write(buf[:])
	var tok [32]byte
	copy(tok[:], mac.Sum(nil))
	cred := Credential{Token: tok, Expires: p.Now().Add(s.cfg.Lifetime)}
	s.creds[tok] = &credRecord{user: r.User, expires: cred.Expires}
	return cred, nil
}

// check validates a credential against the service's records. Only the
// issuing service can do this — the token is meaningless elsewhere.
func (s *Service) check(c Credential) error {
	rec, ok := s.creds[c.Token]
	if !ok {
		return ErrInvalidCred
	}
	if rec.revoked {
		return ErrRevokedCred
	}
	if s.k.Now() > rec.expires {
		return ErrExpiredCred
	}
	return nil
}

// Identity resolves a credential to its principal (service-side helper used
// by the authorization service after verification).
func (s *Service) identity(c Credential) (Principal, error) {
	if err := s.check(c); err != nil {
		return "", err
	}
	return s.creds[c.Token].user, nil
}

// VerifyResult carries the principal back to a verifying service.
type VerifyResult struct{ User Principal }

// identityReq asks for verification plus the principal (used by authz).
type identityReq struct{ Cred Credential }

// Client issues authentication RPCs from a node.
type Client struct {
	caller *portals.Caller
	server netsim.NodeID
}

// NewClient creates a client of the service at server, sending from caller.
func NewClient(caller *portals.Caller, server netsim.NodeID) *Client {
	return &Client{caller: caller, server: server}
}

// Login authenticates against the realm and returns a credential.
// This is the paper's GETCREDS().
func (c *Client) Login(p *sim.Proc, user Principal, secret string) (Credential, error) {
	v, err := c.caller.Call(p, c.server, Portal, loginReq{User: user, Secret: secret}, reqWireSize, credWireSize)
	if err != nil {
		return Credential{}, err
	}
	return v.(Credential), nil
}

// Verify checks a credential with the issuing service.
func (c *Client) Verify(p *sim.Proc, cred Credential) error {
	_, err := c.caller.Call(p, c.server, Portal, verifyReq{Cred: cred}, credWireSize, 16)
	return err
}

// Identity verifies a credential and returns its principal. Used by the
// authorization service (which trusts authn — Figure 5).
func (c *Client) Identity(p *sim.Proc, cred Credential) (Principal, error) {
	v, err := c.caller.Call(p, c.server, Portal, identityReq{Cred: cred}, credWireSize, 64)
	if err != nil {
		return "", err
	}
	return v.(VerifyResult).User, nil
}

// Revoke invalidates a credential immediately (application exit or
// compromise, paper §3.1.4).
func (c *Client) Revoke(p *sim.Proc, cred Credential) error {
	_, err := c.caller.Call(p, c.server, Portal, revokeReq{Cred: cred}, credWireSize, 16)
	return err
}
