package pfs

import (
	"errors"
	"fmt"

	"lwfs/internal/metrics"
	"lwfs/internal/netsim"
	"lwfs/internal/osd"
	"lwfs/internal/portals"
	"lwfs/internal/sim"
)

// OST is an object storage target: the baseline's per-disk data server.
// Unlike the LWFS storage server it trusts its callers completely and
// wraps every write in the distributed-lock-manager discipline: an extent
// lock per backing object, granted whole-object to the current writer, and
// revoked (with a callback round trip) whenever a different client writes.
type OST struct {
	ep   *portals.Endpoint
	dev  *osd.Device
	cfg  Config
	port portals.Index

	locks map[osd.ObjectID]*ostLock

	lockSwitches, writesServed *metrics.Counter
}

type ostLock struct {
	res    *sim.Resource
	holder uint64 // client identity of the current extent-lock holder
}

// ost request bodies

type ostWriteReq struct {
	Obj        osd.ObjectID
	Off        int64
	Len        int64
	Bits       portals.MatchBits
	DataPortal portals.Index
	ClientID   uint64 // lock-holder identity
}

type ostReadReq struct {
	Obj        osd.ObjectID
	Off        int64
	Len        int64
	Bits       portals.MatchBits
	DataPortal portals.Index
}

type ostReadResp struct {
	Len    int64
	Chunks int
}

type ostSyncReq struct{}

// StartOST binds an OST over dev at (ep, port).
func StartOST(ep *portals.Endpoint, dev *osd.Device, port portals.Index, cfg Config) *OST {
	o := &OST{
		ep:    ep,
		dev:   dev,
		cfg:   cfg,
		port:  port,
		locks: make(map[osd.ObjectID]*ostLock),
	}
	po := ep.Metrics().Scope("pfs").Scope(dev.Name())
	o.lockSwitches = po.Counter("lock_switches")
	o.writesServed = po.Counter("writes_served")
	portals.Serve(ep, port, dev.Name(), cfg.OSTThreads, o.handle)
	return o
}

// Target returns the OST's address.
func (o *OST) Target() OSTTarget { return OSTTarget{Node: o.ep.Node(), Port: o.port} }

// Device exposes the backing device.
func (o *OST) Device() *osd.Device { return o.dev }

// LockSwitches reports extent-lock holder changes (revocation callbacks).
//
// Deprecated: thin read of `pfs.<dev>.lock_switches`; prefer
// Registry.Snapshot().
func (o *OST) LockSwitches() int64 { return o.lockSwitches.Value() }

// ostContainer tags PFS backing objects on the shared device model.
const ostContainer osd.ContainerID = 1 << 40

// ensureObject lazily instantiates a backing object (the role of Lustre's
// precreated-object pool: creates never wait on OSTs).
func (o *OST) ensureObject(p *sim.Proc, id osd.ObjectID) error {
	if _, err := o.dev.Lookup(id); err == nil {
		return nil
	}
	if _, err := o.dev.CreateWithID(p, id, ostContainer); err != nil && !errors.Is(err, osd.ErrExists) {
		return err // ErrExists: another service thread won the race
	}
	return nil
}

func (o *OST) lockOf(id osd.ObjectID) *ostLock {
	l, ok := o.locks[id]
	if !ok {
		l = &ostLock{res: sim.NewResource(o.ep.Kernel(), fmt.Sprintf("%s/dlm-%d", o.dev.Name(), id), 1)}
		o.locks[id] = l
	}
	return l
}

func (o *OST) handle(p *sim.Proc, from netsim.NodeID, req interface{}) (interface{}, error) {
	switch r := req.(type) {
	case ostWriteReq:
		return o.write(p, from, r)
	case ostReadReq:
		return o.read(p, from, r)
	case ostSyncReq:
		o.dev.Sync(p)
		return nil, nil
	default:
		return nil, fmt.Errorf("pfs: unknown OST request %T", req)
	}
}

// write services one striped write under the DLM discipline. For a
// single-writer object the lock is a formality (same holder, no contention,
// and the object's requests arrive one at a time anyway). For a shared
// object the lock both serializes service — forfeiting pull/disk overlap —
// and charges a revocation callback whenever the writing client changes.
func (o *OST) write(p *sim.Proc, from netsim.NodeID, r ostWriteReq) (interface{}, error) {
	if err := o.ensureObject(p, r.Obj); err != nil {
		return nil, err
	}
	l := o.lockOf(r.Obj)
	l.res.Acquire(p, 1)
	defer l.res.Release(1)
	p.Sleep(o.cfg.LockOpCost)
	if l.holder != r.ClientID {
		if l.holder != 0 {
			// Revoke the previous holder's cached extent lock: a blocking
			// callback round trip, client-side lock cancellation and page
			// invalidation, and a flush barrier on the object's dirty
			// state before the new grant is safe.
			p.Sleep(o.cfg.RevokeCost + 2*o.ep.Network().Latency())
			o.dev.Sync(p)
			o.lockSwitches.Inc()
		}
		l.holder = r.ClientID
	}
	// Pull the data server-directed with a read-ahead pipeline, writing
	// through to disk as chunks land. Within one bulk RPC the network pull
	// of chunk i+1 overlaps the disk write of chunk i — this is why a
	// single-writer file matches LWFS bandwidth. A shared file never gets
	// here with large extents: its writers arrive one stripe unit at a
	// time (see Client.write), each under the lock discipline above.
	k := p.Kernel()
	chunks := sim.NewMailbox(k, o.dev.Name()+"/pull")
	window := sim.NewResource(k, o.dev.Name()+"/window", 2)
	nchunks := int((r.Len + o.cfg.ChunkSize - 1) / o.cfg.ChunkSize)
	k.Spawn(o.dev.Name()+"/puller", func(q *sim.Proc) {
		for off := int64(0); off < r.Len; off += o.cfg.ChunkSize {
			n := o.cfg.ChunkSize
			if off+n > r.Len {
				n = r.Len - off
			}
			window.Acquire(q, 1)
			payload, err := o.ep.Get(q, from, r.DataPortal, r.Bits, off, n)
			chunks.Send(pulled{off: off, payload: payload, err: err})
			if err != nil {
				return
			}
		}
	})
	var written int64
	var firstErr error
	for i := 0; i < nchunks; i++ {
		c := chunks.Recv(p).(pulled)
		if c.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("pfs: pulling write data: %w", c.err)
			}
			break
		}
		if firstErr == nil {
			if err := o.dev.Write(p, r.Obj, r.Off+c.off, c.payload); err != nil {
				firstErr = err
			} else {
				written += c.payload.Size
			}
		}
		window.Release(1)
	}
	if firstErr != nil {
		return written, firstErr
	}
	o.writesServed.Inc()
	return written, nil
}

type pulled struct {
	off     int64
	payload netsim.Payload
	err     error
}

func (o *OST) read(p *sim.Proc, from netsim.NodeID, r ostReadReq) (interface{}, error) {
	if err := o.ensureObject(p, r.Obj); err != nil {
		return nil, err
	}
	st, err := o.dev.Stat(r.Obj)
	if err != nil {
		return nil, err
	}
	length := r.Len
	if r.Off >= st.Size {
		length = 0
	} else if r.Off+length > st.Size {
		length = st.Size - r.Off
	}
	chunks := 0
	for off := int64(0); off < length; off += o.cfg.ChunkSize {
		n := o.cfg.ChunkSize
		if off+n > length {
			n = length - off
		}
		payload, err := o.dev.Read(p, r.Obj, r.Off+off, n)
		if err != nil {
			return nil, err
		}
		o.ep.Put(from, r.DataPortal, r.Bits, off, payload)
		chunks++
	}
	return ostReadResp{Len: length, Chunks: chunks}, nil
}
