// Package pfs implements the *baseline* for the paper's evaluation (§4): a
// traditional parallel file system shaped like Lustre 1.x, built over the
// same simulated network and disks as LWFS so that the comparison isolates
// the architectural differences the paper isolates:
//
//   - Every file create and open goes through a centralized metadata
//     server whose namespace updates serialize — the ceiling in Figure 10b
//     that makes file-per-process checkpoints metadata-bound at scale.
//   - Files are striped over object storage targets (OSTs), and writes are
//     covered by per-object extent locks with callback revocation. A file
//     shared by many writers ping-pongs those locks: each holder switch
//     costs a revocation round trip, and lock-covered service forfeits the
//     pull/disk pipelining a single-writer object enjoys — the "consistency
//     and synchronization semantics get in the way" effect that halves
//     shared-file throughput in Figure 9.
//   - Clients are trusted (no capabilities), as Lustre trusts the client
//     kernel (§5).
package pfs

import (
	"errors"
	"time"

	"lwfs/internal/netsim"
	"lwfs/internal/osd"
	"lwfs/internal/portals"
)

// Well-known portals.
const (
	// MDSPortal is the metadata server's request portal.
	MDSPortal portals.Index = 50
	// OSTPortalBase is the first OST's request portal on a storage node;
	// co-located OSTs are spaced by OSTPortalStride.
	OSTPortalBase portals.Index = 52
	// OSTPortalStride separates co-located OSTs.
	OSTPortalStride = 2
)

// Errors reported by the file system.
var (
	ErrExists   = errors.New("pfs: file exists")
	ErrNotFound = errors.New("pfs: no such file")
)

// Config tunes the baseline file system.
type Config struct {
	StripeUnit int64         // bytes per stripe chunk
	MDSOpCost  time.Duration // metadata service time per namespace op
	MDSThreads int           // MDS request concurrency (namespace still serializes)
	OSTThreads int           // OST request service processes
	ChunkSize  int64         // server-directed pull granularity at OSTs
	RevokeCost time.Duration // extent-lock holder-switch callback cost
	LockOpCost time.Duration // lock bookkeeping per covered request
}

// DefaultConfig returns the calibrated defaults (see DESIGN.md §7).
func DefaultConfig() Config {
	return Config{
		StripeUnit: 1 << 20,
		MDSOpCost:  1300 * time.Microsecond,
		MDSThreads: 4,
		OSTThreads: 4,
		ChunkSize:  1 << 20,
		RevokeCost: 1500 * time.Microsecond,
		LockOpCost: 20 * time.Microsecond,
	}
}

// OSTTarget names an OST: node plus request portal.
type OSTTarget struct {
	Node netsim.NodeID
	Port portals.Index
}

// Layout describes a file's striping: which OSTs hold it and the object ID
// each OST uses. Object IDs are derived from the inode so OSTs can
// lazily instantiate backing objects (Lustre's precreated-object pool plays
// the same role: creates don't touch OSTs synchronously).
type Layout struct {
	Inode      uint64
	Size       int64 // known size at open (grows with writes)
	StripeUnit int64
	OSTs       []OSTTarget
}

// ObjectID returns the backing object ID for stripe index i.
func (l Layout) ObjectID(i int) osd.ObjectID {
	return osd.ObjectID(l.Inode<<16 | uint64(i))
}

// stripeRange maps a contiguous file range [off, off+length) onto one OST's
// object: for round-robin striping, the piece owned by stripe index i is
// itself contiguous in object space when the range is stripe-aligned, and
// at most two runs otherwise. We return the exact set of (objOff, length)
// runs for stripe i.
type run struct {
	objOff int64
	len    int64
}

func stripeRuns(off, length, unit int64, stripes, i int) []run {
	if length <= 0 {
		return nil
	}
	var runs []run
	m := int64(stripes)
	// Walk stripe-unit windows overlapping [off, off+length).
	first := off / unit
	last := (off + length - 1) / unit
	var cur *run
	for w := first; w <= last; w++ {
		if int(w%m) != i {
			continue
		}
		lo := w * unit
		hi := lo + unit
		if lo < off {
			lo = off
		}
		if hi > off+length {
			hi = off + length
		}
		objOff := (w/m)*unit + (lo - w*unit)
		if cur != nil && cur.objOff+cur.len == objOff {
			cur.len += hi - lo
			continue
		}
		runs = append(runs, run{objOff: objOff, len: hi - lo})
		cur = &runs[len(runs)-1]
	}
	return runs
}
