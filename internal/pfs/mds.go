package pfs

import (
	"fmt"

	"lwfs/internal/metrics"
	"lwfs/internal/netsim"
	"lwfs/internal/portals"
	"lwfs/internal/sim"
)

// MDS is the centralized metadata server: it owns the namespace and file
// layouts. Every create/open/stat/unlink passes through it, and namespace
// mutations serialize on an internal lock — faithful to the architecture
// the paper identifies as "inherently unscalable" (§4): adding OSTs does
// not add metadata throughput.
type MDS struct {
	cfg     Config
	node    netsim.NodeID
	osts    []OSTTarget
	files   map[string]*Layout
	nextIno uint64
	nsLock  *sim.Resource

	creates, opens, unlinks, stats *metrics.Counter
}

// request bodies

type mdsCreateReq struct {
	Path    string
	Stripes int // 0 = stripe over all OSTs
}

type mdsOpenReq struct{ Path string }

type mdsStatReq struct{ Path string }

type mdsUnlinkReq struct{ Path string }

type mdsSetSizeReq struct {
	Path string
	Size int64
}

// StartMDS binds the metadata server at (ep, MDSPortal) with the given OST
// roster.
func StartMDS(ep *portals.Endpoint, osts []OSTTarget, cfg Config) *MDS {
	m := &MDS{
		cfg:    cfg,
		node:   ep.Node(),
		osts:   osts,
		files:  make(map[string]*Layout),
		nsLock: sim.NewResource(ep.Kernel(), "mds/namespace", 1),
	}
	md := ep.Metrics().Scope("pfs").Scope("mds")
	m.creates = md.Counter("creates")
	m.opens = md.Counter("opens")
	m.unlinks = md.Counter("unlinks")
	m.stats = md.Counter("stats")
	portals.Serve(ep, MDSPortal, "mds", cfg.MDSThreads, m.handle)
	return m
}

// Node returns the MDS's node.
func (m *MDS) Node() netsim.NodeID { return m.node }

// Stats reports creates, opens, unlinks and stats served.
//
// Deprecated: thin read of `pfs.mds.creates|opens|unlinks|stats`; prefer
// Registry.Snapshot().
func (m *MDS) Stats() (creates, opens, unlinks, stats int64) {
	return m.creates.Value(), m.opens.Value(), m.unlinks.Value(), m.stats.Value()
}

func (m *MDS) handle(p *sim.Proc, from netsim.NodeID, req interface{}) (interface{}, error) {
	switch r := req.(type) {
	case mdsCreateReq:
		// Namespace mutation: exclusive, full service cost under the lock.
		m.nsLock.Acquire(p, 1)
		p.Sleep(m.cfg.MDSOpCost)
		defer m.nsLock.Release(1)
		if _, ok := m.files[r.Path]; ok {
			return nil, fmt.Errorf("%w: %s", ErrExists, r.Path)
		}
		stripes := r.Stripes
		if stripes <= 0 || stripes > len(m.osts) {
			stripes = len(m.osts)
		}
		m.nextIno++
		l := &Layout{
			Inode:      m.nextIno,
			StripeUnit: m.cfg.StripeUnit,
			OSTs:       append([]OSTTarget(nil), m.osts[:stripes]...),
		}
		m.files[r.Path] = l
		m.creates.Inc()
		return *l, nil

	case mdsOpenReq:
		p.Sleep(m.cfg.MDSOpCost)
		l, ok := m.files[r.Path]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, r.Path)
		}
		m.opens.Inc()
		return *l, nil

	case mdsStatReq:
		p.Sleep(m.cfg.MDSOpCost / 2)
		l, ok := m.files[r.Path]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, r.Path)
		}
		m.stats.Inc()
		return *l, nil

	case mdsSetSizeReq:
		p.Sleep(m.cfg.MDSOpCost / 2)
		l, ok := m.files[r.Path]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, r.Path)
		}
		if r.Size > l.Size {
			l.Size = r.Size
		}
		return nil, nil

	case mdsUnlinkReq:
		m.nsLock.Acquire(p, 1)
		p.Sleep(m.cfg.MDSOpCost)
		defer m.nsLock.Release(1)
		if _, ok := m.files[r.Path]; !ok {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, r.Path)
		}
		delete(m.files, r.Path)
		m.unlinks.Inc()
		return nil, nil

	default:
		return nil, fmt.Errorf("pfs: unknown MDS request %T", req)
	}
}
