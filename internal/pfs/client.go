package pfs

import (
	"fmt"

	"lwfs/internal/netsim"
	"lwfs/internal/portals"
	"lwfs/internal/sim"
)

// writeParallelism bounds a client's concurrent outstanding write/read RPCs
// (Lustre's max_rpcs_in_flight).
const writeParallelism = 8

const (
	pfsReqSize  = 256
	pfsRespSize = 64
	// clientDataPortal is where PFS clients expose transfer buffers.
	clientDataPortal portals.Index = 51
)

// Client is a baseline-PFS client for one application process. Unlike the
// LWFS client it carries no credentials or capabilities: the file system
// trusts it (§5's critique).
type Client struct {
	caller *portals.Caller
	mds    netsim.NodeID
	id     uint64 // lock-holder identity
}

// NewClient creates a PFS client sending from caller's endpoint.
func NewClient(caller *portals.Caller, mds netsim.NodeID) *Client {
	ep := caller.Endpoint()
	// Lock-holder identity must be unique across the whole system: qualify
	// the endpoint-local token with the node ID.
	id := (uint64(ep.Node())+1)<<32 | ep.NextToken()
	return &Client{caller: caller, mds: mds, id: id}
}

// File is an open file: a path plus its striping layout.
type File struct {
	c      *Client
	path   string
	layout Layout
	shared bool
	size   int64 // local high-water mark
}

// Create makes a new file striped over `stripes` OSTs (0 = all) — one
// centralized-MDS round trip, the Figure 10b bottleneck.
func (c *Client) Create(p *sim.Proc, path string, stripes int) (*File, error) {
	v, err := c.caller.Call(p, c.mds, MDSPortal, mdsCreateReq{Path: path, Stripes: stripes}, pfsReqSize, 256)
	if err != nil {
		return nil, err
	}
	l := v.(Layout)
	return &File{c: c, path: path, layout: l}, nil
}

// Open opens an existing file (an MDS round trip).
func (c *Client) Open(p *sim.Proc, path string) (*File, error) {
	v, err := c.caller.Call(p, c.mds, MDSPortal, mdsOpenReq{Path: path}, pfsReqSize, 256)
	if err != nil {
		return nil, err
	}
	l := v.(Layout)
	return &File{c: c, path: path, layout: l, size: l.Size}, nil
}

// Stat looks the file up at the MDS.
func (c *Client) Stat(p *sim.Proc, path string) (Layout, error) {
	v, err := c.caller.Call(p, c.mds, MDSPortal, mdsStatReq{Path: path}, pfsReqSize, 256)
	if err != nil {
		return Layout{}, err
	}
	return v.(Layout), nil
}

// Unlink removes the file's name at the MDS.
func (c *Client) Unlink(p *sim.Proc, path string) error {
	_, err := c.caller.Call(p, c.mds, MDSPortal, mdsUnlinkReq{Path: path}, pfsReqSize, pfsRespSize)
	return err
}

// SetShared marks the file as concurrently written by multiple processes.
// A shared writer cannot hold a covering extent lock, so its writes go out
// one stripe unit at a time and take the server-side lock discipline on
// every unit — POSIX consistency doing its work (§4: "the file system's
// consistency and synchronization semantics get in the way").
func (f *File) SetShared(shared bool) { f.shared = shared }

// Layout returns the file's striping.
func (f *File) Layout() Layout { return f.layout }

// piece is one client-side transfer: a contiguous object-space run on one
// OST, gathered from (possibly strided) file-space data.
type piece struct {
	ost    OSTTarget
	obj    int // stripe index
	objOff int64
	length int64
}

// pieces plans the transfers for [off, off+length): coalesced per-OST runs
// for an exclusively-held file, stripe-unit-sized requests for a shared one.
func (f *File) pieces(off, length int64) []piece {
	unit := f.layout.StripeUnit
	m := len(f.layout.OSTs)
	var out []piece
	if f.shared {
		for cur := off; cur < off+length; {
			w := cur / unit
			hi := (w + 1) * unit
			if hi > off+length {
				hi = off + length
			}
			i := int(w % int64(m))
			out = append(out, piece{
				ost:    f.layout.OSTs[i],
				obj:    i,
				objOff: (w/int64(m))*unit + (cur - w*unit),
				length: hi - cur,
			})
			cur = hi
		}
		return out
	}
	for i := 0; i < m; i++ {
		for _, r := range stripeRuns(off, length, unit, m, i) {
			out = append(out, piece{ost: f.layout.OSTs[i], obj: i, objOff: r.objOff, length: r.len})
		}
	}
	return out
}

// fileOff maps an object-space offset of stripe i back to file space.
func (f *File) fileOff(i int, objOff int64) int64 {
	unit := f.layout.StripeUnit
	m := int64(len(f.layout.OSTs))
	w := (objOff / unit) * m
	return (w+int64(i))*unit + objOff%unit
}

// gather builds the wire payload for a piece from the write payload.
func (f *File) gather(pc piece, off int64, payload netsim.Payload) netsim.Payload {
	if payload.Data == nil {
		return netsim.SyntheticPayload(pc.length)
	}
	out := make([]byte, pc.length)
	unit := f.layout.StripeUnit
	for done := int64(0); done < pc.length; {
		objOff := pc.objOff + done
		fo := f.fileOff(pc.obj, objOff)
		n := unit - objOff%unit
		if n > pc.length-done {
			n = pc.length - done
		}
		copy(out[done:done+n], payload.Data[fo-off:])
		done += n
	}
	return netsim.BytesPayload(out)
}

// parallel runs fn over n indices with bounded concurrency and returns the
// first error.
func (f *File) parallel(p *sim.Proc, n int, fn func(q *sim.Proc, i int) error) error {
	k := p.Kernel()
	var wg sim.WaitGroup
	var firstErr error
	next := 0
	workers := writeParallelism
	if n < workers {
		workers = n
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		k.Spawn(fmt.Sprintf("pfs-client-w%d", w), func(q *sim.Proc) {
			defer wg.Done()
			for {
				if next >= n || firstErr != nil {
					return
				}
				i := next
				next++
				if err := fn(q, i); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		})
	}
	wg.Wait(p)
	return firstErr
}

// Write stores payload at file offset off. Data moves server-directed: the
// client exposes each piece and the OST pulls it.
func (f *File) Write(p *sim.Proc, off int64, payload netsim.Payload) (int64, error) {
	pcs := f.pieces(off, payload.Size)
	ep := f.c.caller.Endpoint()
	var written int64
	err := f.parallel(p, len(pcs), func(q *sim.Proc, i int) error {
		pc := pcs[i]
		bits := portals.MatchBits(ep.NextToken())
		me := ep.Attach(clientDataPortal, bits, 0, &portals.MD{Payload: f.gather(pc, off, payload)})
		defer me.Unlink()
		v, err := f.c.caller.Call(q, pc.ost.Node, pc.ost.Port, ostWriteReq{
			Obj:        f.layout.ObjectID(pc.obj),
			Off:        pc.objOff,
			Len:        pc.length,
			Bits:       bits,
			DataPortal: clientDataPortal,
			ClientID:   f.c.id,
		}, pfsReqSize, pfsRespSize)
		if err != nil {
			return err
		}
		written += v.(int64)
		return nil
	})
	if end := off + payload.Size; end > f.size {
		f.size = end
	}
	return written, err
}

// Read fetches [off, off+length). Short reads return what exists.
func (f *File) Read(p *sim.Proc, off, length int64) (netsim.Payload, error) {
	if off+length > f.size {
		if st, err := f.c.Stat(p, f.path); err == nil && st.Size > f.size {
			f.size = st.Size
		}
	}
	if off >= f.size {
		return netsim.Payload{}, nil
	}
	if off+length > f.size {
		length = f.size - off
	}
	pcs := f.pieces(off, length)
	ep := f.c.caller.Endpoint()
	k := ep.Kernel()
	var buf []byte
	anyReal := false
	err := f.parallel(p, len(pcs), func(q *sim.Proc, i int) error {
		pc := pcs[i]
		bits := portals.MatchBits(ep.NextToken())
		eq := sim.NewMailbox(k, "pfs-read")
		me := ep.Attach(clientDataPortal, bits, 0, &portals.MD{EQ: eq})
		defer me.Unlink()
		v, err := f.c.caller.Call(q, pc.ost.Node, pc.ost.Port, ostReadReq{
			Obj:        f.layout.ObjectID(pc.obj),
			Off:        pc.objOff,
			Len:        pc.length,
			Bits:       bits,
			DataPortal: clientDataPortal,
		}, pfsReqSize, pfsRespSize)
		if err != nil {
			return err
		}
		resp := v.(ostReadResp)
		for c := 0; c < resp.Chunks; c++ {
			ev := eq.Recv(q).(*portals.Event)
			if ev.Payload.Data == nil {
				continue
			}
			if buf == nil {
				buf = make([]byte, length)
			}
			anyReal = true
			chunkObjOff := pc.objOff + ev.Hdr.(int64)
			// Scatter the chunk back to file space, stripe window by
			// stripe window.
			unit := f.layout.StripeUnit
			for done := int64(0); done < ev.Payload.Size; {
				oo := chunkObjOff + done
				fo := f.fileOff(pc.obj, oo)
				n := unit - oo%unit
				if n > ev.Payload.Size-done {
					n = ev.Payload.Size - done
				}
				if fo-off >= 0 && fo-off < length {
					copy(buf[fo-off:], ev.Payload.Data[done:done+n])
				}
				done += n
			}
		}
		return nil
	})
	out := netsim.Payload{Size: length}
	if anyReal {
		out.Data = buf
	}
	return out, err
}

// Sync flushes every OST in the layout (fsync).
func (f *File) Sync(p *sim.Proc) error {
	return f.parallel(p, len(f.layout.OSTs), func(q *sim.Proc, i int) error {
		_, err := f.c.caller.Call(q, f.layout.OSTs[i].Node, f.layout.OSTs[i].Port, ostSyncReq{}, pfsReqSize, pfsRespSize)
		return err
	})
}

// Close reports the file size to the MDS (size is MDS metadata in this
// baseline, as in Lustre 1.x close-time size updates).
func (f *File) Close(p *sim.Proc) error {
	_, err := f.c.caller.Call(p, f.c.mds, MDSPortal, mdsSetSizeReq{Path: f.path, Size: f.size}, pfsReqSize, pfsRespSize)
	return err
}
