package pfs

// RunForTest mirrors the internal run type for property tests.
type RunForTest struct{ ObjOff, Len int64 }

// StripeRunsForTest exposes stripeRuns to the external test package.
func StripeRunsForTest(off, length, unit int64, stripes, i int) []RunForTest {
	var out []RunForTest
	for _, r := range stripeRuns(off, length, unit, stripes, i) {
		out = append(out, RunForTest{ObjOff: r.objOff, Len: r.len})
	}
	return out
}
