package pfs_test

import (
	"bytes"
	"testing"

	"lwfs/internal/netsim"
	"lwfs/internal/sim"
)

func TestReadPastEOFShortens(t *testing.T) {
	cl, f := smallCluster(4)
	c := cl.NewPFSClient(f, 0)
	cl.K.Spawn("app", func(p *sim.Proc) {
		file, err := c.Create(p, "/short", 0)
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		data := []byte("just a few bytes")
		file.Write(p, 0, netsim.BytesPayload(data))
		got, err := file.Read(p, 5, 1000)
		if err != nil || !bytes.Equal(got.Data, data[5:]) {
			t.Fatalf("short read: %q %v", got.Data, err)
		}
		got, err = file.Read(p, 100, 10)
		if err != nil || got.Size != 0 {
			t.Fatalf("past-eof: %+v %v", got, err)
		}
	})
	run(t, cl)
}

func TestCloseUpdatesMDSSize(t *testing.T) {
	cl, f := smallCluster(2)
	a := cl.NewPFSClient(f, 0)
	b := cl.NewPFSClient(f, 1)
	done := sim.NewMailbox(cl.K, "done")
	cl.K.Spawn("writer", func(p *sim.Proc) {
		file, _ := a.Create(p, "/sized", 0)
		file.Write(p, 0, netsim.SyntheticPayload(12345))
		file.Close(p)
		done.Send("ok")
	})
	cl.K.Spawn("reader", func(p *sim.Proc) {
		done.Recv(p)
		l, err := b.Stat(p, "/sized")
		if err != nil || l.Size != 12345 {
			t.Errorf("stat after close: %+v %v", l, err)
		}
	})
	run(t, cl)
}

func TestSparseStripedWrite(t *testing.T) {
	cl, f := smallCluster(4)
	c := cl.NewPFSClient(f, 0)
	cl.K.Spawn("app", func(p *sim.Proc) {
		file, _ := c.Create(p, "/sparse", 0)
		// Write far into the file, skipping several stripes.
		data := []byte("tail data")
		if _, err := file.Write(p, 7*mb, netsim.BytesPayload(data)); err != nil {
			t.Fatalf("sparse write: %v", err)
		}
		got, err := file.Read(p, 7*mb, int64(len(data)))
		if err != nil || !bytes.Equal(got.Data, data) {
			t.Fatalf("sparse read: %q %v", got.Data, err)
		}
		// The hole reads back zeros (or synthetic absence), not garbage.
		hole, err := file.Read(p, 3*mb, 16)
		if err != nil {
			t.Fatalf("hole read: %v", err)
		}
		for _, byt := range hole.Data {
			if byt != 0 {
				t.Fatalf("hole contains %v", hole.Data)
			}
		}
	})
	run(t, cl)
}

func TestSingleStripeFile(t *testing.T) {
	cl, f := smallCluster(4)
	c := cl.NewPFSClient(f, 0)
	cl.K.Spawn("app", func(p *sim.Proc) {
		file, err := c.Create(p, "/one", 1)
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		if len(file.Layout().OSTs) != 1 {
			t.Fatalf("stripes = %d", len(file.Layout().OSTs))
		}
		data := make([]byte, 3*mb)
		for i := range data {
			data[i] = byte(i)
		}
		file.Write(p, 0, netsim.BytesPayload(data))
		got, err := file.Read(p, mb, mb)
		if err != nil || !bytes.Equal(got.Data, data[mb:2*mb]) {
			t.Fatalf("single-stripe read: %v", err)
		}
	})
	run(t, cl)
}
