package pfs_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"lwfs/internal/cluster"
	"lwfs/internal/netsim"
	"lwfs/internal/pfs"
	"lwfs/internal/sim"
)

const mb = 1 << 20

func smallCluster(servers int) (*cluster.Cluster, *cluster.PFS) {
	spec := cluster.DevCluster()
	spec.ComputeNodes = 8
	spec = spec.WithServers(servers)
	cl := cluster.New(spec)
	return cl, cl.DeployPFS()
}

func run(t *testing.T, cl *cluster.Cluster) {
	t.Helper()
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCreateWriteReadRoundTrip(t *testing.T) {
	cl, f := smallCluster(4)
	c := cl.NewPFSClient(f, 0)
	cl.K.Spawn("app", func(p *sim.Proc) {
		file, err := c.Create(p, "/ckpt/rank0", 0)
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		data := make([]byte, 3*mb+12345) // crosses stripe units and OSTs
		rng := rand.New(rand.NewSource(7))
		rng.Read(data)
		n, err := file.Write(p, 0, netsim.BytesPayload(data))
		if err != nil || n != int64(len(data)) {
			t.Fatalf("write: n=%d err=%v", n, err)
		}
		if err := file.Sync(p); err != nil {
			t.Fatalf("sync: %v", err)
		}
		if err := file.Close(p); err != nil {
			t.Fatalf("close: %v", err)
		}
		got, err := file.Read(p, 0, int64(len(data)))
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if !bytes.Equal(got.Data, data) {
			t.Fatal("striped round trip corrupted data")
		}
		// Unaligned offset read spanning OSTs.
		got, err = file.Read(p, 777777, 1500000)
		if err != nil || !bytes.Equal(got.Data, data[777777:777777+1500000]) {
			t.Fatalf("offset read: err=%v", err)
		}
	})
	run(t, cl)
}

func TestOpenSeesOtherWritersData(t *testing.T) {
	cl, f := smallCluster(4)
	a := cl.NewPFSClient(f, 0)
	b := cl.NewPFSClient(f, 1)
	done := sim.NewMailbox(cl.K, "done")
	data := []byte("written-by-a")
	cl.K.Spawn("a", func(p *sim.Proc) {
		file, err := a.Create(p, "/shared", 0)
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		file.Write(p, 0, netsim.BytesPayload(data))
		file.Close(p)
		done.Send("ok")
	})
	cl.K.Spawn("b", func(p *sim.Proc) {
		done.Recv(p)
		file, err := b.Open(p, "/shared")
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		got, err := file.Read(p, 0, int64(len(data)))
		if err != nil || !bytes.Equal(got.Data, data) {
			t.Fatalf("read: %q %v", got.Data, err)
		}
	})
	run(t, cl)
}

func TestCreateDuplicateAndOpenMissing(t *testing.T) {
	cl, f := smallCluster(2)
	c := cl.NewPFSClient(f, 0)
	cl.K.Spawn("app", func(p *sim.Proc) {
		if _, err := c.Create(p, "/x", 0); err != nil {
			t.Fatalf("create: %v", err)
		}
		if _, err := c.Create(p, "/x", 0); !errors.Is(err, pfs.ErrExists) {
			t.Errorf("dup create: %v", err)
		}
		if _, err := c.Open(p, "/nope"); !errors.Is(err, pfs.ErrNotFound) {
			t.Errorf("open missing: %v", err)
		}
		if err := c.Unlink(p, "/x"); err != nil {
			t.Errorf("unlink: %v", err)
		}
		if _, err := c.Open(p, "/x"); !errors.Is(err, pfs.ErrNotFound) {
			t.Errorf("open unlinked: %v", err)
		}
	})
	run(t, cl)
}

func TestMDSSerializesCreates(t *testing.T) {
	cl, f := smallCluster(4)
	var last sim.Time
	n := 8
	for i := 0; i < n; i++ {
		c := cl.NewPFSClient(f, i)
		path := fmt.Sprintf("/f%d", i)
		cl.K.Spawn(fmt.Sprintf("app%d", i), func(p *sim.Proc) {
			if _, err := c.Create(p, path, 0); err != nil {
				t.Errorf("create: %v", err)
			}
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	run(t, cl)
	// 8 creates at 1.3ms serialized ≈ 10.4ms, regardless of OST count.
	if last.Duration() < 8*1300*time.Microsecond {
		t.Fatalf("creates overlapped at the MDS: finished at %v", last)
	}
	creates, _, _, _ := f.MDS.Stats()
	if creates != int64(n) {
		t.Fatalf("creates = %d", creates)
	}
}

func TestSharedFileLockSwitches(t *testing.T) {
	cl, f := smallCluster(2)
	nClients := 4
	perClient := int64(8 * mb)
	done := sim.NewMailbox(cl.K, "created")
	cl.K.Spawn("rank0", func(p *sim.Proc) {
		c := cl.NewPFSClient(f, 0)
		file, err := c.Create(p, "/shared", 0)
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		file.SetShared(true)
		for i := 1; i < nClients; i++ {
			done.Send("go")
		}
		if _, err := file.Write(p, 0, netsim.SyntheticPayload(perClient)); err != nil {
			t.Errorf("write: %v", err)
		}
	})
	for i := 1; i < nClients; i++ {
		i := i
		cl.K.Spawn(fmt.Sprintf("rank%d", i), func(p *sim.Proc) {
			done.Recv(p)
			c := cl.NewPFSClient(f, i)
			file, err := c.Open(p, "/shared")
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			file.SetShared(true)
			if _, err := file.Write(p, int64(i)*perClient, netsim.SyntheticPayload(perClient)); err != nil {
				t.Errorf("write: %v", err)
			}
		})
	}
	run(t, cl)
	var switches int64
	for _, ost := range f.OSTs {
		switches += ost.LockSwitches()
	}
	// Interleaved shared writers must ping-pong extent locks heavily.
	if switches < int64(nClients) {
		t.Fatalf("lock switches = %d; shared-file contention not modeled", switches)
	}
}

func TestSharedSlowerThanFilePerProcess(t *testing.T) {
	// The Figure 9 headline in miniature: same data volume, shared file vs
	// file per process; shared must be substantially slower.
	const nClients = 4
	const perClient = 32 * mb

	elapsed := func(shared bool) time.Duration {
		cl, f := smallCluster(4)
		var last sim.Time
		ready := sim.NewMailbox(cl.K, "ready")
		cl.K.Spawn("rank0", func(p *sim.Proc) {
			c := cl.NewPFSClient(f, 0)
			var file *pfs.File
			var err error
			if shared {
				file, err = c.Create(p, "/data", 0)
			} else {
				file, err = c.Create(p, "/data-0", 0)
			}
			if err != nil {
				panic(err)
			}
			file.SetShared(shared)
			for i := 1; i < nClients; i++ {
				ready.Send("go")
			}
			start := p.Now()
			file.Write(p, 0, netsim.SyntheticPayload(perClient))
			file.Sync(p)
			_ = start
			if p.Now() > last {
				last = p.Now()
			}
		})
		for i := 1; i < nClients; i++ {
			i := i
			cl.K.Spawn(fmt.Sprintf("rank%d", i), func(p *sim.Proc) {
				ready.Recv(p)
				c := cl.NewPFSClient(f, i)
				var file *pfs.File
				var err error
				if shared {
					file, err = c.Open(p, "/data")
					if err == nil {
						file.SetShared(true)
					}
				} else {
					file, err = c.Create(p, fmt.Sprintf("/data-%d", i), 0)
				}
				if err != nil {
					panic(err)
				}
				off := int64(0)
				if shared {
					off = int64(i) * perClient
				}
				file.Write(p, off, netsim.SyntheticPayload(perClient))
				file.Sync(p)
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		if err := cl.Run(); err != nil {
			panic(err)
		}
		return last.Duration()
	}

	tShared := elapsed(true)
	tFPP := elapsed(false)
	ratio := tShared.Seconds() / tFPP.Seconds()
	if ratio < 1.4 {
		t.Fatalf("shared/fpp time ratio = %.2f (shared %v, fpp %v); consistency penalty missing", ratio, tShared, tFPP)
	}
	if ratio > 4.0 {
		t.Fatalf("shared/fpp time ratio = %.2f; penalty implausibly large", ratio)
	}
}

func TestStripeRunsMatchNaiveMapping(t *testing.T) {
	prop := func(offRaw, lenRaw uint32, unitPow, stripesRaw uint8) bool {
		unit := int64(1) << (10 + unitPow%6) // 1KB..32KB
		stripes := int(stripesRaw%7) + 1
		off := int64(offRaw % (1 << 20))
		length := int64(lenRaw % (1 << 20))
		// Naive: walk every byte... too slow; walk unit boundaries.
		type key struct {
			stripe int
			objOff int64
		}
		want := map[key]int64{} // start -> accumulated contiguous length
		if length > 0 {
			first := off / unit
			last := (off + length - 1) / unit
			for w := first; w <= last; w++ {
				i := int(w % int64(stripes))
				lo, hi := w*unit, (w+1)*unit
				if lo < off {
					lo = off
				}
				if hi > off+length {
					hi = off + length
				}
				objOff := (w/int64(stripes))*unit + (lo - w*unit)
				want[key{i, objOff}] = hi - lo
			}
		}
		var gotTotal, wantTotal int64
		for _, l := range want {
			wantTotal += l
		}
		for i := 0; i < stripes; i++ {
			for _, r := range pfs.StripeRunsForTest(off, length, unit, stripes, i) {
				gotTotal += r.Len
				// Every run must start at a window boundary recorded in want
				// or be a coalescing of adjacent windows; verify coverage by
				// total length plus non-overlap via sortedness.
				if r.Len <= 0 {
					return false
				}
			}
		}
		return gotTotal == wantTotal
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: striped write/read round-trips arbitrary data at arbitrary
// offsets for any stripe count.
func TestStripedRoundTripProperty(t *testing.T) {
	prop := func(seed int64, stripesRaw uint8) bool {
		stripes := int(stripesRaw%4) + 1
		cl, f := smallCluster(4)
		rng := rand.New(rand.NewSource(seed))
		ok := true
		cl.K.Spawn("app", func(p *sim.Proc) {
			c := cl.NewPFSClient(f, 0)
			file, err := c.Create(p, "/t", stripes)
			if err != nil {
				ok = false
				return
			}
			// Small stripe unit comes from config; emulate by writing
			// ranges crossing many units.
			model := make([]byte, 4*mb)
			touched := false
			for i := 0; i < 4; i++ {
				off := int64(rng.Intn(2 * mb))
				data := make([]byte, rng.Intn(mb)+1)
				rng.Read(data)
				if _, err := file.Write(p, off, netsim.BytesPayload(data)); err != nil {
					ok = false
					return
				}
				copy(model[off:], data)
				touched = true
			}
			if !touched {
				return
			}
			got, err := file.Read(p, 0, int64(len(model)))
			if err != nil {
				ok = false
				return
			}
			limit := got.Size
			for i := int64(0); i < limit; i++ {
				var have byte
				if got.Data != nil {
					have = got.Data[i]
				}
				if have != model[i] {
					ok = false
					return
				}
			}
		})
		if err := cl.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
