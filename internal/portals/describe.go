package portals

import "fmt"

// DescribeBody renders a wire-message body for protocol traces. One-sided
// puts are unwrapped to show the protocol-level header they carry — an RPC
// request's or response's inner body type — instead of the transport
// envelope, so a trace of a write reads "put[storage.writeReq]" rather than
// a wall of "portals.putMsg". Unknown bodies fall back to their Go type.
func DescribeBody(body interface{}) string {
	switch b := body.(type) {
	case putMsg:
		switch h := b.hdr.(type) {
		case rpcRequest:
			return fmt.Sprintf("put[%T]", h.Body)
		case rpcResponse:
			if h.Err != nil {
				return fmt.Sprintf("put[%T err]", h.Body)
			}
			return fmt.Sprintf("put[%T]", h.Body)
		case nil:
			return "put[data]"
		default:
			return fmt.Sprintf("put[%T]", h)
		}
	case getReq:
		return "get"
	case getReply:
		return "get-reply"
	default:
		return fmt.Sprintf("%T", body)
	}
}
