package portals

import (
	"errors"
	"testing"
	"time"

	"lwfs/internal/netsim"
	"lwfs/internal/sim"
)

// quickRetry keeps virtual times short in tests.
var quickRetry = RetryPolicy{
	MaxAttempts: 3,
	Timeout:     10 * time.Millisecond,
	Backoff:     time.Millisecond,
	MaxBackoff:  4 * time.Millisecond,
	Jitter:      100 * time.Microsecond,
}

func TestCallRetriesThroughDropWindow(t *testing.T) {
	r := newRig(t, 2, 100*mb)
	var calls int
	Serve(r.eps[1], 5, "svc", 1, func(p *sim.Proc, from netsim.NodeID, req interface{}) (interface{}, error) {
		calls++
		return req.(int) * 2, nil
	})
	// Drop everything for the first 15ms: the first attempt's request
	// vanishes; the retry (after timeout + backoff) goes through.
	r.net.InjectFault(netsim.FaultSpec{End: sim.Time(0).Add(15 * time.Millisecond), DropProb: 1})
	c := NewCaller(r.eps[0])
	c.SetRetry(quickRetry, sim.NewRand(1))
	var got interface{}
	var err error
	r.k.Spawn("client", func(p *sim.Proc) {
		got, err = c.Call(p, r.eps[1].Node(), 5, 21, 64, 64)
	})
	if e := r.k.Run(sim.MaxTime); e != nil {
		t.Fatal(e)
	}
	if err != nil || got.(int) != 42 {
		t.Fatalf("got %v, %v", got, err)
	}
	if calls != 1 {
		t.Fatalf("handler ran %d times", calls)
	}
	if c.Retries() == 0 {
		t.Fatal("expected at least one retry")
	}
}

func TestRetryExhaustionReturnsTimeout(t *testing.T) {
	r := newRig(t, 2, 100*mb)
	Serve(r.eps[1], 5, "svc", 1, func(p *sim.Proc, from netsim.NodeID, req interface{}) (interface{}, error) {
		return nil, nil
	})
	r.net.Partition([]netsim.NodeID{r.eps[0].Node()}, []netsim.NodeID{r.eps[1].Node()})
	c := NewCaller(r.eps[0])
	c.SetRetry(quickRetry, sim.NewRand(1))
	var err error
	r.k.Spawn("client", func(p *sim.Proc) {
		_, err = c.Call(p, r.eps[1].Node(), 5, "x", 64, 64)
	})
	if e := r.k.Run(sim.MaxTime); e != nil {
		t.Fatal(e)
	}
	if !errors.Is(err, ErrRPCTimeout) {
		t.Fatalf("err = %v", err)
	}
}

func TestServerDedupsSlowRequestRetries(t *testing.T) {
	// The handler is slower (30ms) than the retry budget's per-attempt
	// timeout (10ms), so the client re-sends twice while the original
	// execution is still running. The server must run the handler ONCE and
	// answer the final attempt's token from the original execution.
	r := newRig(t, 2, 100*mb)
	var calls int
	srv := Serve(r.eps[1], 5, "svc", 4, func(p *sim.Proc, from netsim.NodeID, req interface{}) (interface{}, error) {
		calls++
		p.Sleep(30 * time.Millisecond)
		return "done", nil
	})
	c := NewCaller(r.eps[0])
	c.SetRetry(quickRetry, sim.NewRand(1))
	var got interface{}
	var err error
	r.k.Spawn("client", func(p *sim.Proc) {
		got, err = c.Call(p, r.eps[1].Node(), 5, "op", 64, 64)
	})
	if e := r.k.Run(sim.MaxTime); e != nil {
		t.Fatal(e)
	}
	if err != nil || got.(string) != "done" {
		t.Fatalf("got %v, %v", got, err)
	}
	if calls != 1 {
		t.Fatalf("non-idempotent handler ran %d times", calls)
	}
	if srv.Deduped() != 2 {
		t.Fatalf("deduped = %d, want 2", srv.Deduped())
	}
	// The first two attempts' replies eventually landed after their
	// timeouts: dropped and counted, never delivered to a live call.
	if c.LateReplies() != 2 {
		t.Fatalf("late replies = %d, want 2", c.LateReplies())
	}
}

func TestLateReplyAfterCallTimeoutIsCountedNotDelivered(t *testing.T) {
	r := newRig(t, 2, 100*mb)
	Serve(r.eps[1], 5, "svc", 2, func(p *sim.Proc, from netsim.NodeID, req interface{}) (interface{}, error) {
		if req.(string) == "slow" {
			p.Sleep(50 * time.Millisecond)
		}
		return "resp:" + req.(string), nil
	})
	c := NewCaller(r.eps[0])
	var first, second interface{}
	var err1, err2 error
	r.k.Spawn("client", func(p *sim.Proc) {
		// Times out at 5ms; its reply arrives ~50ms, long after the next
		// call is in flight.
		first, err1 = c.CallTimeout(p, r.eps[1].Node(), 5, "slow", 64, 64, 5*time.Millisecond)
		second, err2 = c.Call(p, r.eps[1].Node(), 5, "fast", 64, 64)
		// Park past the late reply's arrival so the drop is observable.
		p.Sleep(100 * time.Millisecond)
	})
	if e := r.k.Run(sim.MaxTime); e != nil {
		t.Fatal(e)
	}
	if !errors.Is(err1, ErrRPCTimeout) || first != nil {
		t.Fatalf("first = %v, %v", first, err1)
	}
	if err2 != nil || second.(string) != "resp:fast" {
		t.Fatalf("second call corrupted by late reply: %v, %v", second, err2)
	}
	if c.LateReplies() != 1 {
		t.Fatalf("late replies = %d, want 1", c.LateReplies())
	}
	if r.eps[0].LateDrops() != 1 {
		t.Fatalf("endpoint late drops = %d, want 1", r.eps[0].LateDrops())
	}
}

func TestServerDownDiscardsAndRestartServes(t *testing.T) {
	r := newRig(t, 2, 100*mb)
	srv := Serve(r.eps[1], 5, "svc", 1, func(p *sim.Proc, from netsim.NodeID, req interface{}) (interface{}, error) {
		return "ok", nil
	})
	c := NewCaller(r.eps[0])
	c.SetRetry(RetryPolicy{MaxAttempts: 8, Timeout: 5 * time.Millisecond, Backoff: 2 * time.Millisecond}, sim.NewRand(1))
	srv.SetDown(true)
	r.k.After(20*time.Millisecond, func() { srv.SetDown(false) })
	var got interface{}
	var err error
	r.k.Spawn("client", func(p *sim.Proc) {
		got, err = c.Call(p, r.eps[1].Node(), 5, "x", 64, 64)
	})
	if e := r.k.Run(sim.MaxTime); e != nil {
		t.Fatal(e)
	}
	if err != nil || got.(string) != "ok" {
		t.Fatalf("got %v, %v", got, err)
	}
	if srv.Discarded() == 0 {
		t.Fatal("expected discarded requests while down")
	}
}

func TestCrashSuppressesInFlightReply(t *testing.T) {
	// A handler that is mid-execution when the server crashes must not leak
	// its reply after the crash — even if the server restarts first.
	r := newRig(t, 2, 100*mb)
	srv := Serve(r.eps[1], 5, "svc", 1, func(p *sim.Proc, from netsim.NodeID, req interface{}) (interface{}, error) {
		p.Sleep(10 * time.Millisecond)
		return "stale", nil
	})
	r.k.After(5*time.Millisecond, func() { srv.SetDown(true) })
	r.k.After(7*time.Millisecond, func() { srv.SetDown(false) })
	c := NewCaller(r.eps[0])
	var err error
	r.k.Spawn("client", func(p *sim.Proc) {
		_, err = c.CallTimeout(p, r.eps[1].Node(), 5, "x", 64, 64, 30*time.Millisecond)
	})
	if e := r.k.Run(sim.MaxTime); e != nil {
		t.Fatal(e)
	}
	if !errors.Is(err, ErrRPCTimeout) {
		t.Fatalf("err = %v, want timeout (reply suppressed)", err)
	}
	if srv.Served() != 0 {
		t.Fatalf("served = %d, want 0", srv.Served())
	}
}

func TestGetRetryRidesOutDropWindow(t *testing.T) {
	r := newRig(t, 2, 100*mb)
	r.eps[1].Attach(4, 1, 0, &MD{Payload: netsim.BytesPayload([]byte("abcdefgh"))})
	r.eps[0].SetGetRetry(quickRetry, sim.NewRand(1))
	r.net.InjectFault(netsim.FaultSpec{End: sim.Time(0).Add(15 * time.Millisecond), DropProb: 1})
	var got netsim.Payload
	var err error
	r.k.Spawn("getter", func(p *sim.Proc) {
		got, err = r.eps[0].Get(p, r.eps[1].Node(), 4, 1, 0, 8)
	})
	if e := r.k.Run(sim.MaxTime); e != nil {
		t.Fatal(e)
	}
	if err != nil || string(got.Data) != "abcdefgh" {
		t.Fatalf("got %q, %v", got.Data, err)
	}
}

func TestGetRetryExhaustionReturnsError(t *testing.T) {
	r := newRig(t, 2, 100*mb)
	r.eps[1].Attach(4, 1, 0, &MD{Payload: netsim.SyntheticPayload(64)})
	r.eps[0].SetGetRetry(quickRetry, sim.NewRand(1))
	r.net.Partition([]netsim.NodeID{r.eps[0].Node()}, []netsim.NodeID{r.eps[1].Node()})
	var err error
	r.k.Spawn("getter", func(p *sim.Proc) {
		_, err = r.eps[0].Get(p, r.eps[1].Node(), 4, 1, 0, 8)
	})
	if e := r.k.Run(sim.MaxTime); e != nil {
		t.Fatal(e)
	}
	if !errors.Is(err, ErrGetTimeout) {
		t.Fatalf("err = %v", err)
	}
}

func TestPauseUncappedBackoffGrows(t *testing.T) {
	// MaxBackoff == 0 documents "uncapped": the backoff must still double
	// per attempt instead of sticking at Backoff.
	pol := RetryPolicy{MaxAttempts: 6, Timeout: time.Millisecond, Backoff: time.Millisecond}
	for a, want := 0, time.Millisecond; a < 5; a, want = a+1, want*2 {
		if got := pol.Pause(a, nil); got != want {
			t.Fatalf("attempt %d: pause = %v, want %v", a, got, want)
		}
	}
	capped := pol
	capped.MaxBackoff = 3 * time.Millisecond
	if got := capped.Pause(4, nil); got != 3*time.Millisecond {
		t.Fatalf("capped pause = %v, want %v", got, 3*time.Millisecond)
	}
}

func TestDedupEvictionSkipsInFlightEntries(t *testing.T) {
	// With the dedup table full of newer completed entries, an in-flight
	// execution must never be evicted: a retransmission of it has to find
	// the original's future, or a non-idempotent handler would run twice.
	r := newRig(t, 2, 100*mb)
	calls := make(map[string]int)
	srv := Serve(r.eps[1], 5, "svc", 4, func(p *sim.Proc, from netsim.NodeID, req interface{}) (interface{}, error) {
		calls[req.(string)]++
		if req.(string) == "slow" {
			p.Sleep(40 * time.Millisecond)
		}
		return "ok", nil
	})
	srv.dedupCap = 1
	// Swallow replies: this test drives raw requests, not a Caller.
	r.eps[0].Attach(replyPortal, 0, ^MatchBits(0), &MD{EQ: sim.NewMailbox(r.k, "replies")})
	me := r.eps[0].Node()
	r.k.Spawn("driver", func(p *sim.Proc) {
		put := func(tok, reqID uint64, body string) {
			r.eps[0].Put(r.eps[1].Node(), 5, 0,
				rpcRequest{Token: tok, ReqID: reqID, From: me, Body: body, RespSize: 0},
				netsim.SyntheticPayload(64))
		}
		put(1, 100, "slow") // starts a 40ms execution
		p.Sleep(5 * time.Millisecond)
		put(2, 101, "fast1") // completes; its insert must not evict "slow"
		p.Sleep(5 * time.Millisecond)
		put(3, 102, "fast2") // pushes the table past cap again
		p.Sleep(5 * time.Millisecond)
		put(4, 100, "slow") // retransmission while the original still runs
	})
	if e := r.k.Run(sim.MaxTime); e != nil {
		t.Fatal(e)
	}
	if calls["slow"] != 1 {
		t.Fatalf("non-idempotent in-flight handler ran %d times after eviction pressure", calls["slow"])
	}
	if srv.Deduped() != 1 {
		t.Fatalf("deduped = %d, want 1", srv.Deduped())
	}
}
