// Package portals implements the subset of the Portals 3.0 message-passing
// interface (Brightwell et al., SAND99-2959) that the LWFS data-movement
// design depends on (paper §3.2): portal-table indexes, match entries,
// memory descriptors bound to payloads, one-sided Put and Get operations,
// and event queues.
//
// The crucial property is one-sidedness: a storage server can issue a Get
// against a client's posted memory descriptor to *pull* write data at the
// server's own pace (Figure 6), and a Put against a client's receive buffer
// to *push* read data. The initiating side needs no cooperation from a
// process on the target node: matching and data movement happen "in the
// NIC" (here, in kernel-context handlers over internal/netsim).
package portals

import (
	"errors"
	"fmt"
	"time"

	"lwfs/internal/metrics"
	"lwfs/internal/netsim"
	"lwfs/internal/sim"
)

// Index is a portal-table index. Services on a node bind match entries at
// well-known indexes (like ports).
type Index int

// MatchBits select which match entry a message lands in.
type MatchBits uint64

// HeaderSize is the wire overhead of every portals message, in bytes.
const HeaderSize = 64

// EventType discriminates event-queue entries.
type EventType int

const (
	// EventPut signals that a Put landed in one of our match entries.
	EventPut EventType = iota
	// EventGet signals that a remote Get read from one of our match entries.
	EventGet
)

func (t EventType) String() string {
	switch t {
	case EventPut:
		return "PUT"
	case EventGet:
		return "GET"
	default:
		return fmt.Sprintf("EventType(%d)", int(t))
	}
}

// Event is an event-queue entry describing a completed remote operation.
type Event struct {
	Type      EventType
	Initiator netsim.NodeID
	Bits      MatchBits
	Hdr       interface{}    // out-of-band header data carried by a Put
	Payload   netsim.Payload // data deposited by a Put (zero for Get events)
	Offset    int64          // offset read by a Get
	Length    int64          // length read by a Get
}

// MD is a memory descriptor: the data a match entry exposes to remote Gets
// and the event queue that learns about remote operations.
type MD struct {
	Payload netsim.Payload // readable contents for remote Gets
	EQ      *sim.Mailbox   // receives *Event; may be nil to suppress events
}

// ME is a match entry: match bits plus a memory descriptor, attached to a
// portal index. Unlink removes it.
type ME struct {
	bits   MatchBits
	ignore MatchBits
	md     *MD
	once   bool
	ep     *Endpoint
	pt     Index
	gone   bool
}

// MD returns the match entry's memory descriptor.
func (me *ME) MD() *MD { return me.md }

// Unlink detaches the match entry; subsequent messages no longer match it.
func (me *ME) Unlink() {
	if me.gone {
		return
	}
	me.gone = true
	list := me.ep.tables[me.pt]
	for i, x := range list {
		if x == me {
			me.ep.tables[me.pt] = append(list[:i], list[i+1:]...)
			return
		}
	}
}

// wire message bodies

type putMsg struct {
	pt      Index
	bits    MatchBits
	hdr     interface{}
	payload netsim.Payload
}

type getReq struct {
	pt        Index
	bits      MatchBits
	offset    int64
	length    int64
	token     uint64
	initiator netsim.NodeID
}

type getReply struct {
	token   uint64
	payload netsim.Payload
	err     string
}

type getPending struct {
	fut *sim.Future
}

// lateKey identifies an expected late message: a portal index and match
// bits whose match entry was unlinked by a timeout.
type lateKey struct {
	pt   Index
	bits MatchBits
}

// Endpoint is a node's portals interface. At most one endpoint may exist
// per node; services on the node share it, distinguished by portal index.
type Endpoint struct {
	net    *netsim.Network
	node   *netsim.Node
	tables map[Index][]*ME

	pending   map[uint64]*getPending
	nextToken uint64
	tokSeq    uint64

	getRetry RetryPolicy
	getRNG   *sim.Rand

	lateWatch map[lateKey]func()
	lateOrder []lateKey // FIFO eviction when a watched reply never arrives

	dropped   *metrics.Counter
	lateDrops *metrics.Counter
	droppedAt map[Index]int64
}

// NextToken allocates an endpoint-unique token. All users of shared reply
// portals (RPC callers, data-transfer match bits, lock clients) draw from
// this one space so co-located client processes never collide.
func (ep *Endpoint) nextTok() uint64 {
	ep.tokSeq++
	return ep.tokSeq
}

// NextToken is the exported form of the endpoint token allocator.
func (ep *Endpoint) NextToken() uint64 { return ep.nextTok() }

// ErrNoMatch is reported when a Get targets a portal index / match bits with
// no attached match entry.
var ErrNoMatch = errors.New("portals: no matching match entry")

// ErrBounds is reported when a Get reads outside the target MD's payload.
var ErrBounds = errors.New("portals: get outside memory descriptor bounds")

// ErrGetTimeout is reported when a one-sided Get exhausts its retry budget
// (SetGetRetry) without a reply.
var ErrGetTimeout = errors.New("portals: get timeout")

// NewEndpoint creates the portals endpoint for node and installs it as the
// node's network handler.
func NewEndpoint(net *netsim.Network, node *netsim.Node) *Endpoint {
	scope := net.Metrics().Scope("portals").Scope(node.Name)
	ep := &Endpoint{
		net:       net,
		node:      node,
		tables:    make(map[Index][]*ME),
		pending:   make(map[uint64]*getPending),
		dropped:   scope.Counter("no_match_drops"),
		lateDrops: scope.Counter("late_drops"),
	}
	node.SetHandler(ep.deliver)
	return ep
}

// Node returns the endpoint's node ID.
func (ep *Endpoint) Node() netsim.NodeID { return ep.node.ID }

// NodeName returns the endpoint's node name — the instance segment services
// use when registering metrics ("burst.bb1.staged").
func (ep *Endpoint) NodeName() string { return ep.node.Name }

// Network returns the underlying network.
func (ep *Endpoint) Network() *netsim.Network { return ep.net }

// Metrics returns the cluster-wide instrument registry (never nil for an
// endpoint built on a live network).
func (ep *Endpoint) Metrics() *metrics.Registry { return ep.net.Metrics() }

// Kernel returns the simulation kernel.
func (ep *Endpoint) Kernel() *sim.Kernel { return ep.net.Kernel() }

// Dropped reports messages that arrived with no matching match entry.
//
// Deprecated: thin read of `portals.<node>.no_match_drops`; prefer
// Metrics().Snapshot().
func (ep *Endpoint) Dropped() int64 { return ep.dropped.Value() }

// DroppedAt reports no-match drops at one portal index.
func (ep *Endpoint) DroppedAt(pt Index) int64 { return ep.droppedAt[pt] }

// LateDrops reports messages dropped because they arrived after the
// operation that posted their match entry had timed out.
//
// Deprecated: thin read of `portals.<node>.late_drops`; prefer
// Metrics().Snapshot().
func (ep *Endpoint) LateDrops() int64 { return ep.lateDrops.Value() }

// SetGetRetry arms one-sided Gets with a retry policy: each attempt is
// bounded by pol.Timeout and a lost request or reply is re-issued under a
// fresh token, up to pol.MaxAttempts. Without it (the default) a Get whose
// messages are dropped blocks its process forever — fatal for the storage
// server's pull-based writes under fault injection. rng seeds the backoff
// jitter; nil uses a default seed.
func (ep *Endpoint) SetGetRetry(pol RetryPolicy, rng *sim.Rand) {
	if rng == nil {
		rng = sim.NewRand(0)
	}
	ep.getRetry, ep.getRNG = pol, rng
}

// lateWatchCap bounds the late-reply watch table (entries whose reply was
// lost outright, not late, would otherwise accumulate forever).
const lateWatchCap = 4096

// watchLate registers fn to run if a message lands at (pt, bits) after its
// match entry was unlinked by a timeout. One-shot.
func (ep *Endpoint) watchLate(pt Index, bits MatchBits, fn func()) {
	if ep.lateWatch == nil {
		ep.lateWatch = make(map[lateKey]func())
	}
	k := lateKey{pt: pt, bits: bits}
	ep.lateWatch[k] = fn
	ep.lateOrder = append(ep.lateOrder, k)
	if len(ep.lateOrder) > lateWatchCap {
		delete(ep.lateWatch, ep.lateOrder[0])
		ep.lateOrder = ep.lateOrder[1:]
	}
}

func (ep *Endpoint) dropNoMatch(pt Index, bits MatchBits) {
	if fn, ok := ep.lateWatch[lateKey{pt: pt, bits: bits}]; ok {
		delete(ep.lateWatch, lateKey{pt: pt, bits: bits})
		ep.lateDrops.Inc()
		fn()
	}
	ep.dropped.Inc()
	if ep.droppedAt == nil {
		ep.droppedAt = make(map[Index]int64)
	}
	ep.droppedAt[pt]++
}

// Attach binds a match entry at portal index pt. Incoming operations match
// when (msgBits &^ ignore) == (bits &^ ignore). Entries are searched in
// attach order; the first match wins.
func (ep *Endpoint) Attach(pt Index, bits, ignore MatchBits, md *MD) *ME {
	me := &ME{bits: bits, ignore: ignore, md: md, ep: ep, pt: pt}
	ep.tables[pt] = append(ep.tables[pt], me)
	return me
}

// AttachOnce is Attach, but the entry unlinks itself after the first
// matching operation (use-once receive buffers).
func (ep *Endpoint) AttachOnce(pt Index, bits, ignore MatchBits, md *MD) *ME {
	me := ep.Attach(pt, bits, ignore, md)
	me.once = true
	return me
}

func (ep *Endpoint) match(pt Index, bits MatchBits) *ME {
	for _, me := range ep.tables[pt] {
		if (bits &^ me.ignore) == (me.bits &^ me.ignore) {
			return me
		}
	}
	return nil
}

// Put initiates a one-sided put of payload (plus hdr, which travels in the
// message header) into the match entry at (target, pt, bits). It is
// asynchronous: the caller continues immediately.
func (ep *Endpoint) Put(target netsim.NodeID, pt Index, bits MatchBits, hdr interface{}, payload netsim.Payload) {
	ep.net.Send(netsim.Message{
		From: ep.node.ID,
		To:   target,
		Size: HeaderSize + payload.Size,
		Body: putMsg{pt: pt, bits: bits, hdr: hdr, payload: payload},
	})
}

// PutWait is Put, but blocks the calling process until the message has left
// the local NIC (egress serialization complete).
func (ep *Endpoint) PutWait(p *sim.Proc, target netsim.NodeID, pt Index, bits MatchBits, hdr interface{}, payload netsim.Payload) {
	ep.net.SendWait(p, netsim.Message{
		From: ep.node.ID,
		To:   target,
		Size: HeaderSize + payload.Size,
		Body: putMsg{pt: pt, bits: bits, hdr: hdr, payload: payload},
	})
}

// Get performs a one-sided read of [offset, offset+length) from the match
// entry at (target, pt, bits), blocking p until the data arrives. The
// request is a small message; the reply carries the data and pays full
// serialization costs on the target's egress and our ingress — this is the
// server-pull half of server-directed I/O.
func (ep *Endpoint) Get(p *sim.Proc, target netsim.NodeID, pt Index, bits MatchBits, offset, length int64) (netsim.Payload, error) {
	attempts := 1
	if ep.getRetry.Enabled() {
		attempts = ep.getRetry.MaxAttempts
	}
	for a := 0; a < attempts; a++ {
		if a > 0 {
			p.Sleep(ep.getRetry.Pause(a-1, ep.getRNG))
		}
		ep.nextToken++
		token := ep.nextToken
		pend := &getPending{fut: sim.NewFuture()}
		ep.pending[token] = pend
		ep.net.Send(netsim.Message{
			From: ep.node.ID,
			To:   target,
			Size: HeaderSize,
			Body: getReq{pt: pt, bits: bits, offset: offset, length: length, token: token, initiator: ep.node.ID},
		})
		var v interface{}
		var err error
		if ep.getRetry.Enabled() {
			var ok bool
			v, err, ok = pend.fut.WaitTimeout(p, ep.getRetry.Timeout)
			if !ok {
				// Lost request or reply: retry under a fresh token. If the
				// reply is merely late it finds no pending entry and is
				// dropped — tokens are never reused, so it cannot complete a
				// different Get.
				delete(ep.pending, token)
				continue
			}
		} else {
			v, err = pend.fut.Wait(p)
		}
		if err != nil {
			return netsim.Payload{}, err
		}
		return v.(netsim.Payload), nil
	}
	return netsim.Payload{}, ErrGetTimeout
}

// deliver runs in kernel context for every message addressed to this node.
func (ep *Endpoint) deliver(m netsim.Message) {
	switch body := m.Body.(type) {
	case putMsg:
		me := ep.match(body.pt, body.bits)
		if me == nil {
			ep.dropNoMatch(body.pt, body.bits)
			return
		}
		if me.once {
			me.Unlink()
		}
		if me.md != nil && me.md.EQ != nil {
			me.md.EQ.Send(&Event{
				Type:      EventPut,
				Initiator: m.From,
				Bits:      body.bits,
				Hdr:       body.hdr,
				Payload:   body.payload,
			})
		}
	case getReq:
		me := ep.match(body.pt, body.bits)
		reply := getReply{token: body.token}
		if me == nil {
			ep.dropNoMatch(body.pt, body.bits)
			reply.err = ErrNoMatch.Error()
		} else {
			src := me.md.Payload
			if body.offset < 0 || body.length < 0 || body.offset+body.length > src.Size {
				reply.err = ErrBounds.Error()
			} else if src.Data != nil {
				end := body.offset + body.length
				if end > int64(len(src.Data)) {
					end = int64(len(src.Data))
				}
				var data []byte
				if body.offset < end {
					data = src.Data[body.offset:end]
				}
				reply.payload = netsim.Payload{Size: body.length, Data: data}
			} else {
				reply.payload = netsim.SyntheticPayload(body.length)
			}
			if me.once {
				me.Unlink()
			}
			if me.md.EQ != nil {
				me.md.EQ.Send(&Event{
					Type:      EventGet,
					Initiator: m.From,
					Bits:      body.bits,
					Offset:    body.offset,
					Length:    body.length,
				})
			}
		}
		size := HeaderSize + reply.payload.Size
		ep.net.Send(netsim.Message{From: ep.node.ID, To: body.initiator, Size: size, Body: reply})
	case getReply:
		pend, ok := ep.pending[body.token]
		if !ok {
			ep.dropped.Inc()
			return
		}
		delete(ep.pending, body.token)
		if body.err != "" {
			pend.fut.Complete(nil, errors.New(body.err))
			return
		}
		pend.fut.Complete(body.payload, nil)
	default:
		ep.dropped.Inc()
	}
}

// Echo measures a small-message round trip to target's echo responder; it
// is used by the Table 2 microbenchmarks. The target must have called
// ServeEcho.
func (ep *Endpoint) Echo(p *sim.Proc, target netsim.NodeID) (time.Duration, error) {
	start := p.Now()
	_, err := ep.Get(p, target, echoPortal, 0, 0, 1)
	if err != nil {
		return 0, err
	}
	return p.Now().Sub(start), nil
}

// echoPortal is a reserved portal index for Echo.
const echoPortal Index = 1023

// ServeEcho attaches a one-byte echo responder used by Echo.
func (ep *Endpoint) ServeEcho() {
	ep.Attach(echoPortal, 0, ^MatchBits(0), &MD{Payload: netsim.SyntheticPayload(1)})
}
