package portals

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"lwfs/internal/netsim"
	"lwfs/internal/sim"
)

const mb = 1 << 20

type rig struct {
	k   *sim.Kernel
	net *netsim.Network
	eps []*Endpoint
}

func newRig(t *testing.T, nodes int, bw float64) *rig {
	if t != nil {
		t.Helper()
	}
	k := sim.NewKernel()
	net := netsim.New(k, 5*time.Microsecond)
	r := &rig{k: k, net: net}
	for i := 0; i < nodes; i++ {
		nd := net.AddNode(fmt.Sprintf("n%d", i), netsim.Config{EgressBW: bw, IngressBW: bw})
		r.eps = append(r.eps, NewEndpoint(net, nd))
	}
	return r
}

func TestPutDeliversEvent(t *testing.T) {
	r := newRig(t, 2, 100*mb)
	eq := sim.NewMailbox(r.k, "eq")
	r.eps[1].Attach(7, 42, 0, &MD{EQ: eq})
	var got *Event
	r.k.Spawn("recv", func(p *sim.Proc) { got = eq.Recv(p).(*Event) })
	r.k.Spawn("send", func(p *sim.Proc) {
		r.eps[0].Put(r.eps[1].Node(), 7, 42, "hdr", netsim.BytesPayload([]byte("payload")))
	})
	if err := r.k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Type != EventPut || got.Hdr.(string) != "hdr" ||
		string(got.Payload.Data) != "payload" || got.Initiator != r.eps[0].Node() {
		t.Fatalf("event = %+v", got)
	}
}

func TestPutNoMatchDropped(t *testing.T) {
	r := newRig(t, 2, 100*mb)
	r.eps[0].Put(r.eps[1].Node(), 9, 1, nil, netsim.SyntheticPayload(10))
	if err := r.k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	if r.eps[1].Dropped() != 1 {
		t.Fatalf("dropped = %d", r.eps[1].Dropped())
	}
}

func TestMatchBitsAndIgnore(t *testing.T) {
	r := newRig(t, 2, 100*mb)
	eqA := sim.NewMailbox(r.k, "a")
	eqB := sim.NewMailbox(r.k, "b")
	// Entry A matches exactly bits 5; entry B matches anything (ignore all).
	r.eps[1].Attach(3, 5, 0, &MD{EQ: eqA})
	r.eps[1].Attach(3, 0, ^MatchBits(0), &MD{EQ: eqB})
	r.eps[0].Put(r.eps[1].Node(), 3, 5, nil, netsim.SyntheticPayload(1))
	r.eps[0].Put(r.eps[1].Node(), 3, 6, nil, netsim.SyntheticPayload(1))
	if err := r.k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	if eqA.Len() != 1 || eqB.Len() != 1 {
		t.Fatalf("eqA=%d eqB=%d", eqA.Len(), eqB.Len())
	}
}

func TestAttachOnceUnlinksAfterFirstMatch(t *testing.T) {
	r := newRig(t, 2, 100*mb)
	eq := sim.NewMailbox(r.k, "eq")
	r.eps[1].AttachOnce(3, 5, 0, &MD{EQ: eq})
	r.eps[0].Put(r.eps[1].Node(), 3, 5, nil, netsim.SyntheticPayload(1))
	r.eps[0].Put(r.eps[1].Node(), 3, 5, nil, netsim.SyntheticPayload(1))
	if err := r.k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	if eq.Len() != 1 || r.eps[1].Dropped() != 1 {
		t.Fatalf("eq=%d dropped=%d", eq.Len(), r.eps[1].Dropped())
	}
}

func TestGetPullsRealBytes(t *testing.T) {
	r := newRig(t, 2, 100*mb)
	data := []byte("0123456789abcdef")
	r.eps[1].Attach(4, 77, 0, &MD{Payload: netsim.BytesPayload(data)})
	var got netsim.Payload
	var err error
	r.k.Spawn("getter", func(p *sim.Proc) {
		got, err = r.eps[0].Get(p, r.eps[1].Node(), 4, 77, 4, 8)
	})
	if e := r.k.Run(sim.MaxTime); e != nil {
		t.Fatal(e)
	}
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, []byte("456789ab")) || got.Size != 8 {
		t.Fatalf("got %q size %d", got.Data, got.Size)
	}
}

func TestGetSyntheticPayload(t *testing.T) {
	r := newRig(t, 2, 100*mb)
	r.eps[1].Attach(4, 1, 0, &MD{Payload: netsim.SyntheticPayload(512 * mb)})
	var got netsim.Payload
	r.k.Spawn("getter", func(p *sim.Proc) {
		var err error
		got, err = r.eps[0].Get(p, r.eps[1].Node(), 4, 1, 128*mb, 4*mb)
		if err != nil {
			t.Errorf("get: %v", err)
		}
	})
	if err := r.k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	if got.Size != 4*mb || got.Data != nil {
		t.Fatalf("got %+v", got)
	}
}

func TestGetTimingChargesDataOnReplyPath(t *testing.T) {
	r := newRig(t, 2, 100*mb)
	r.eps[1].Attach(4, 1, 0, &MD{Payload: netsim.SyntheticPayload(100 * mb)})
	var elapsed time.Duration
	r.k.Spawn("getter", func(p *sim.Proc) {
		start := p.Now()
		if _, err := r.eps[0].Get(p, r.eps[1].Node(), 4, 1, 0, 100*mb); err != nil {
			t.Errorf("get: %v", err)
		}
		elapsed = p.Now().Sub(start)
	})
	if err := r.k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	// Request ~free; reply: 1s egress + latency + 1s ingress ≈ 2s.
	if elapsed < 2*time.Second || elapsed > 2*time.Second+time.Millisecond {
		t.Fatalf("elapsed = %v", elapsed)
	}
}

func TestGetNoMatchError(t *testing.T) {
	r := newRig(t, 2, 100*mb)
	var err error
	r.k.Spawn("getter", func(p *sim.Proc) {
		_, err = r.eps[0].Get(p, r.eps[1].Node(), 4, 9, 0, 16)
	})
	if e := r.k.Run(sim.MaxTime); e != nil {
		t.Fatal(e)
	}
	if err == nil || err.Error() != ErrNoMatch.Error() {
		t.Fatalf("err = %v", err)
	}
}

func TestGetBoundsError(t *testing.T) {
	r := newRig(t, 2, 100*mb)
	r.eps[1].Attach(4, 1, 0, &MD{Payload: netsim.SyntheticPayload(100)})
	var err error
	r.k.Spawn("getter", func(p *sim.Proc) {
		_, err = r.eps[0].Get(p, r.eps[1].Node(), 4, 1, 90, 20)
	})
	if e := r.k.Run(sim.MaxTime); e != nil {
		t.Fatal(e)
	}
	if err == nil || err.Error() != ErrBounds.Error() {
		t.Fatalf("err = %v", err)
	}
}

func TestGetEventNotifiesOwner(t *testing.T) {
	r := newRig(t, 2, 100*mb)
	eq := sim.NewMailbox(r.k, "eq")
	r.eps[1].Attach(4, 1, 0, &MD{Payload: netsim.SyntheticPayload(1000), EQ: eq})
	r.k.Spawn("getter", func(p *sim.Proc) {
		if _, err := r.eps[0].Get(p, r.eps[1].Node(), 4, 1, 100, 200); err != nil {
			t.Errorf("get: %v", err)
		}
	})
	var ev *Event
	r.k.Spawn("owner", func(p *sim.Proc) { ev = eq.Recv(p).(*Event) })
	if err := r.k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	if ev == nil || ev.Type != EventGet || ev.Offset != 100 || ev.Length != 200 {
		t.Fatalf("ev = %+v", ev)
	}
}

func TestEcho(t *testing.T) {
	r := newRig(t, 2, 1000*mb)
	r.eps[1].ServeEcho()
	var rtt time.Duration
	r.k.Spawn("pinger", func(p *sim.Proc) {
		var err error
		rtt, err = r.eps[0].Echo(p, r.eps[1].Node())
		if err != nil {
			t.Errorf("echo: %v", err)
		}
	})
	if err := r.k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	// RTT at least 2x latency.
	if rtt < 10*time.Microsecond || rtt > 100*time.Microsecond {
		t.Fatalf("rtt = %v", rtt)
	}
}

func TestRPCRoundTrip(t *testing.T) {
	r := newRig(t, 2, 100*mb)
	Serve(r.eps[1], 10, "adder", 1, func(p *sim.Proc, from netsim.NodeID, req interface{}) (interface{}, error) {
		return req.(int) + 1, nil
	})
	c := NewCaller(r.eps[0])
	var got int
	r.k.Spawn("client", func(p *sim.Proc) {
		v, err := c.Call(p, r.eps[1].Node(), 10, 41, 64, 64)
		if err != nil {
			t.Errorf("call: %v", err)
			return
		}
		got = v.(int)
	})
	if err := r.k.Run(sim.Time(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("got %d", got)
	}
}

func TestRPCErrorPropagates(t *testing.T) {
	r := newRig(t, 2, 100*mb)
	boom := errors.New("boom")
	Serve(r.eps[1], 10, "failer", 1, func(p *sim.Proc, from netsim.NodeID, req interface{}) (interface{}, error) {
		return nil, boom
	})
	c := NewCaller(r.eps[0])
	var err error
	r.k.Spawn("client", func(p *sim.Proc) {
		_, err = c.Call(p, r.eps[1].Node(), 10, nil, 64, 64)
	})
	if e := r.k.Run(sim.Time(time.Minute)); e != nil {
		t.Fatal(e)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestRPCServerSerializesWithOneThread(t *testing.T) {
	r := newRig(t, 3, 1000*mb)
	Serve(r.eps[2], 10, "slow", 1, func(p *sim.Proc, from netsim.NodeID, req interface{}) (interface{}, error) {
		p.Sleep(10 * time.Millisecond)
		return nil, nil
	})
	var done [2]sim.Time
	for i := 0; i < 2; i++ {
		i := i
		c := NewCaller(r.eps[i])
		r.k.Spawn(fmt.Sprintf("c%d", i), func(p *sim.Proc) {
			if _, err := c.Call(p, r.eps[2].Node(), 10, nil, 64, 64); err != nil {
				t.Errorf("call: %v", err)
			}
			done[i] = p.Now()
		})
	}
	if err := r.k.Run(sim.Time(time.Minute)); err != nil {
		t.Fatal(err)
	}
	d0, d1 := done[0].Duration(), done[1].Duration()
	if d1 < d0 {
		d0, d1 = d1, d0
	}
	if d0 < 10*time.Millisecond || d1 < 20*time.Millisecond {
		t.Fatalf("done = %v %v", done[0], done[1])
	}
}

func TestRPCTimeout(t *testing.T) {
	r := newRig(t, 2, 100*mb)
	Serve(r.eps[1], 10, "sleeper", 1, func(p *sim.Proc, from netsim.NodeID, req interface{}) (interface{}, error) {
		p.Sleep(time.Hour)
		return nil, nil
	})
	c := NewCaller(r.eps[0])
	var err error
	var elapsed time.Duration
	r.k.Spawn("client", func(p *sim.Proc) {
		start := p.Now()
		_, err = c.CallTimeout(p, r.eps[1].Node(), 10, nil, 64, 64, time.Second)
		elapsed = p.Now().Sub(start)
	})
	// The sleeping worker keeps an event pending until the hour passes;
	// limit the run so the test stays fast.
	if e := r.k.Run(sim.Time(2 * time.Hour)); e != nil {
		t.Fatal(e)
	}
	if !errors.Is(err, ErrRPCTimeout) || elapsed != time.Second {
		t.Fatalf("err=%v elapsed=%v", err, elapsed)
	}
}

func TestUnlinkRemovesEntry(t *testing.T) {
	r := newRig(t, 2, 100*mb)
	eq := sim.NewMailbox(r.k, "eq")
	me := r.eps[1].Attach(3, 5, 0, &MD{EQ: eq})
	me.Unlink()
	me.Unlink() // idempotent
	r.eps[0].Put(r.eps[1].Node(), 3, 5, nil, netsim.SyntheticPayload(1))
	if err := r.k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	if eq.Len() != 0 || r.eps[1].Dropped() != 1 {
		t.Fatalf("eq=%d dropped=%d", eq.Len(), r.eps[1].Dropped())
	}
}

// Property: Get round-trips arbitrary offsets/lengths of a real buffer
// exactly, and rejects anything out of bounds.
func TestGetRoundTripProperty(t *testing.T) {
	prop := func(data []byte, off, ln uint16) bool {
		if len(data) == 0 {
			data = []byte{0}
		}
		offset := int64(off) % int64(len(data))
		length := int64(ln) % (int64(len(data)) - offset + 1)
		r := newRig(nil, 2, 100*mb)
		r.eps[1].Attach(4, 1, 0, &MD{Payload: netsim.BytesPayload(data)})
		okc := make(chan bool, 1)
		r.k.Spawn("getter", func(p *sim.Proc) {
			got, err := r.eps[0].Get(p, r.eps[1].Node(), 4, 1, offset, length)
			okc <- err == nil && got.Size == length && bytes.Equal(got.Data, data[offset:offset+length])
		})
		if err := r.k.Run(sim.MaxTime); err != nil {
			return false
		}
		return <-okc
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
