package portals

import (
	"errors"
	"fmt"
	"time"

	"lwfs/internal/netsim"
	"lwfs/internal/sim"
)

// This file provides a small request/response convention over portals, used
// by every LWFS and PFS control protocol: the client Puts a small request to
// the service's portal index, carrying a reply token; the service Puts the
// response back to the client's reply portal matched by that token.
//
// Bulk data never rides on RPC — it moves via one-sided Get/Put against the
// memory descriptors named inside request headers (server-directed I/O).

// replyPortal is the reserved portal index where all RPC responses land.
const replyPortal Index = 1022

// rpcRequest is the header of an RPC request message.
type rpcRequest struct {
	Token    uint64
	From     netsim.NodeID
	Body     interface{}
	RespSize int64 // wire size the response should occupy (0 => header only)
}

// rpcResponse is the header of an RPC response message. Err travels as an
// error value: message bodies are in-memory values throughout the simulated
// network, so preserving error identity (errors.Is against the service
// packages' sentinel errors) costs nothing and makes the client API honest.
type rpcResponse struct {
	Token uint64
	Body  interface{}
	Err   error
}

// Handler processes one RPC request on a service process. It may block
// (sleep for service time, do disk I/O, issue portals Gets). The returned
// body travels back to the caller.
type Handler func(p *sim.Proc, from netsim.NodeID, req interface{}) (resp interface{}, err error)

// Server dispatches RPC requests arriving at one portal index to a pool of
// service processes. Threads models the server's internal concurrency: a
// Lustre MDS with one service thread serializes every create; an LWFS
// storage server with several threads overlaps network pulls with disk
// writes across requests.
type Server struct {
	ep      *Endpoint
	pt      Index
	name    string
	q       *sim.Mailbox
	handler Handler
	paused  bool

	served int64
}

// Serve attaches an RPC server at (ep, pt) with the given number of service
// processes.
func Serve(ep *Endpoint, pt Index, name string, threads int, handler Handler) *Server {
	if threads <= 0 {
		panic(fmt.Sprintf("portals: server %q: need at least one thread", name))
	}
	k := ep.Kernel()
	s := &Server{ep: ep, pt: pt, name: name, q: sim.NewMailbox(k, name+"/rpcq"), handler: handler}
	ep.Attach(pt, 0, ^MatchBits(0), &MD{EQ: s.q})
	for i := 0; i < threads; i++ {
		k.SpawnDaemon(fmt.Sprintf("%s/worker%d", name, i), s.worker)
	}
	return s
}

// Served reports the number of requests completed.
func (s *Server) Served() int64 { return s.served }

// QueueLen reports requests waiting for a service thread.
func (s *Server) QueueLen() int { return s.q.Len() }

func (s *Server) worker(p *sim.Proc) {
	for {
		ev := s.q.Recv(p).(*Event)
		req, ok := ev.Hdr.(rpcRequest)
		if !ok {
			continue
		}
		body, err := s.handler(p, req.From, req.Body)
		resp := rpcResponse{Token: req.Token, Body: body, Err: err}
		s.served++
		size := HeaderSize + req.RespSize
		s.ep.Put(req.From, replyPortal, MatchBits(req.Token), resp, netsim.SyntheticPayload(size-HeaderSize))
	}
}

// ErrRPCTimeout is returned by CallTimeout when the deadline passes.
var ErrRPCTimeout = errors.New("portals: rpc timeout")

// Caller issues RPCs from an endpoint. Tokens come from the endpoint's
// shared space, so any number of callers may coexist on one node.
type Caller struct {
	ep *Endpoint
}

// NewCaller creates a caller on ep.
func NewCaller(ep *Endpoint) *Caller { return &Caller{ep: ep} }

// Endpoint returns the caller's endpoint.
func (c *Caller) Endpoint() *Endpoint { return c.ep }

// Call sends req (occupying reqSize bytes on the wire, in addition to the
// portals header) to the server at (target, pt) and blocks p for the
// response. respSize tells the server how large its answer is on the wire.
func (c *Caller) Call(p *sim.Proc, target netsim.NodeID, pt Index, req interface{}, reqSize, respSize int64) (interface{}, error) {
	return c.call(p, target, pt, req, reqSize, respSize, 0)
}

// CallTimeout is Call with a deadline; it returns ErrRPCTimeout if no
// response arrives in time (the response, if it arrives later, is dropped).
func (c *Caller) CallTimeout(p *sim.Proc, target netsim.NodeID, pt Index, req interface{}, reqSize, respSize int64, timeout time.Duration) (interface{}, error) {
	return c.call(p, target, pt, req, reqSize, respSize, timeout)
}

func (c *Caller) call(p *sim.Proc, target netsim.NodeID, pt Index, req interface{}, reqSize, respSize int64, timeout time.Duration) (interface{}, error) {
	token := c.ep.nextTok()
	mb := sim.NewMailbox(c.ep.Kernel(), fmt.Sprintf("rpc-reply-%d", token))
	me := c.ep.AttachOnce(replyPortal, MatchBits(token), 0, &MD{EQ: mb})
	c.ep.Put(target, pt, 0, rpcRequest{Token: token, From: c.ep.Node(), Body: req, RespSize: respSize},
		netsim.SyntheticPayload(reqSize))

	var ev interface{}
	if timeout > 0 {
		v, ok := mb.RecvTimeout(p, timeout)
		if !ok {
			me.Unlink()
			return nil, ErrRPCTimeout
		}
		ev = v
	} else {
		ev = mb.Recv(p)
	}
	resp := ev.(*Event).Hdr.(rpcResponse)
	return resp.Body, resp.Err
}
