package portals

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"lwfs/internal/metrics"
	"lwfs/internal/netsim"
	"lwfs/internal/sim"
)

// This file provides a small request/response convention over portals, used
// by every LWFS and PFS control protocol: the client Puts a small request to
// the service's portal index, carrying a reply token; the service Puts the
// response back to the client's reply portal matched by that token.
//
// Bulk data never rides on RPC — it moves via one-sided Get/Put against the
// memory descriptors named inside request headers (server-directed I/O).

// replyPortal is the reserved portal index where all RPC responses land.
const replyPortal Index = 1022

// rpcRequest is the header of an RPC request message.
type rpcRequest struct {
	Token    uint64
	ReqID    uint64 // nonzero for retryable calls; servers dedup on (From, ReqID)
	From     netsim.NodeID
	Class    uint8 // scheduling class (Caller.SetClass); 0 = foreground
	Body     interface{}
	RespSize int64 // wire size the response should occupy (0 => header only)
}

// rpcResponse is the header of an RPC response message. Err travels as an
// error value: message bodies are in-memory values throughout the simulated
// network, so preserving error identity (errors.Is against the service
// packages' sentinel errors) costs nothing and makes the client API honest.
type rpcResponse struct {
	Token uint64
	Body  interface{}
	Err   error
}

// Handler processes one RPC request on a service process. It may block
// (sleep for service time, do disk I/O, issue portals Gets). The returned
// body travels back to the caller.
type Handler func(p *sim.Proc, from netsim.NodeID, req interface{}) (resp interface{}, err error)

// ErrOverload is the explicit shed verdict: an admission-controlled server
// whose queue is full answers immediately with this error instead of letting
// the request age into a timeout. Callers should back off and retry (Call
// treats it as retryable); it is NOT a timeout — the server is alive.
var ErrOverload = errors.New("portals: server overloaded, request shed")

// ErrCircuitOpen is returned by a breaker-armed Caller without issuing the
// attempt: the target's circuit is open after consecutive failures. It wraps
// ErrRPCTimeout deliberately — every failover/degraded-read path that treats
// a timeout as "route around this server" handles a fast-failed attempt
// identically, except the caller waited zero time instead of a full timeout.
var ErrCircuitOpen = fmt.Errorf("portals: circuit open (fast-fail): %w", ErrRPCTimeout)

// Delivery is one parsed request in flight between arrival and service —
// what a Dispatcher schedules. From, Class and Body are visible so admission
// policy can classify it; the reply routing stays private to the Server.
type Delivery struct {
	From  netsim.NodeID
	Class uint8
	Body  interface{}

	req   rpcRequest
	valid bool
}

// Dispatcher is a pluggable queue discipline between request arrival and the
// service threads (an admission controller). Submit is called on arrival: it
// either queues the delivery or rejects it with an error (typically
// ErrOverload) which is sent straight back to the caller without consuming a
// service thread. Next blocks a service thread until a delivery is
// dispatchable — the dispatcher picks the order (fair-share, priority). Len
// reports queued deliveries; Clear discards them all (server crash) and
// returns how many were dropped.
type Dispatcher interface {
	Submit(d Delivery) error
	Next(p *sim.Proc) Delivery
	Len() int
	Clear() int
}

// dedupKey identifies one logical client request across retries.
type dedupKey struct {
	from  netsim.NodeID
	reqID uint64
}

// dedupResult is what a completed execution leaves behind for duplicates.
type dedupResult struct {
	body interface{}
	err  error
}

// defaultDedupCap bounds the dedup table; the oldest *completed* entries
// fall out FIFO (in-flight executions are never evicted — a retransmission
// of one must keep finding its future, or the handler would re-run). 4096
// logical requests in flight or recently completed per server is far beyond
// anything the simulated workloads generate.
const defaultDedupCap = 4096

// Server dispatches RPC requests arriving at one portal index to a pool of
// service processes. Threads models the server's internal concurrency: a
// Lustre MDS with one service thread serializes every create; an LWFS
// storage server with several threads overlaps network pulls with disk
// writes across requests.
//
// Retried requests (nonzero ReqID) are deduplicated: a duplicate of a
// request still executing waits for the original and returns its response;
// a duplicate of a completed request returns the recorded response without
// re-running the handler. This is what makes client retry safe for
// non-idempotent operations (object create, 2PC prepare).
type Server struct {
	ep      *Endpoint
	pt      Index
	name    string
	q       *sim.Mailbox
	handler Handler

	inflight map[dedupKey]*sim.Future
	order    []dedupKey // FIFO eviction of inflight
	dedupCap int

	// down models a crashed process: requests are discarded unanswered and
	// replies from handler executions that straddled the crash are
	// suppressed. epoch increments on every SetDown(true) so an execution
	// that began before a crash cannot leak its reply after a restart.
	down  bool
	epoch uint64

	// disp, when set, reorders/limits requests between arrival and
	// service (admission control). nil keeps the FIFO mailbox path.
	disp Dispatcher

	// Registered under `rpc.<name>.*` — these count *completed RPC
	// requests*, a different unit from the link-level `net.<node>.*`
	// message counters (one served request typically moves several
	// network messages: request, pull/push data, reply).
	served    *metrics.Counter
	deduped   *metrics.Counter
	discarded *metrics.Counter
	shed      *metrics.Counter
}

// metricName flattens an RPC server name into a registry instance segment:
// "osd0.0/txn" registers under "rpc.osd0.0.txn.*".
func metricName(name string) string { return strings.ReplaceAll(name, "/", ".") }

// Serve attaches an RPC server at (ep, pt) with the given number of service
// processes. The server registers `rpc.<name>.served|deduped|discarded`
// counters and a `rpc.<name>.queue_depth` gauge in the network's metrics
// registry.
func Serve(ep *Endpoint, pt Index, name string, threads int, handler Handler) *Server {
	if threads <= 0 {
		panic(fmt.Sprintf("portals: server %q: need at least one thread", name))
	}
	k := ep.Kernel()
	scope := ep.Metrics().Scope("rpc").Scope(metricName(name))
	s := &Server{
		ep: ep, pt: pt, name: name,
		q:         sim.NewMailbox(k, name+"/rpcq"),
		handler:   handler,
		inflight:  make(map[dedupKey]*sim.Future),
		dedupCap:  defaultDedupCap,
		served:    scope.Counter("served"),
		deduped:   scope.Counter("deduped"),
		discarded: scope.Counter("discarded"),
		shed:      scope.Counter("shed"),
	}
	scope.GaugeFunc("queue_depth", func() int64 {
		n := int64(s.q.Len())
		if s.disp != nil {
			n += int64(s.disp.Len())
		}
		return n
	})
	ep.Attach(pt, 0, ^MatchBits(0), &MD{EQ: s.q})
	for i := 0; i < threads; i++ {
		k.SpawnDaemon(fmt.Sprintf("%s/worker%d", name, i), s.worker)
	}
	return s
}

// SetDispatcher installs an admission controller between request arrival and
// the service threads. An intake daemon parses arrivals off the wire mailbox
// and offers them to d.Submit; a rejection (ErrOverload) is answered
// immediately with the error and zero payload — the caller learns "shed" at
// network latency instead of aging into a timeout. Service threads then pull
// work through d.Next in whatever order the dispatcher chooses.
//
// Must be called once, before the simulation runs (servers are configured at
// deploy time); installing a second dispatcher panics.
func (s *Server) SetDispatcher(d Dispatcher) {
	if s.disp != nil {
		panic(fmt.Sprintf("portals: server %q: dispatcher already set", s.name))
	}
	s.disp = d
	s.ep.Kernel().SpawnDaemon(s.name+"/intake", func(p *sim.Proc) {
		for {
			ev := s.q.Recv(p).(*Event)
			req, ok := ev.Hdr.(rpcRequest)
			if !ok {
				continue
			}
			if s.down {
				s.discarded.Inc()
				continue
			}
			if err := d.Submit(Delivery{From: req.From, Class: req.Class, Body: req.Body, req: req, valid: true}); err != nil {
				s.shedReply(s.epoch, req, err)
			}
		}
	})
}

// shedReply answers a rejected request with err and no payload. Sheds are
// counted separately from served: the handler never ran.
func (s *Server) shedReply(epoch uint64, req rpcRequest, err error) {
	if s.down || epoch != s.epoch {
		return
	}
	s.shed.Inc()
	s.ep.Put(req.From, replyPortal, MatchBits(req.Token), rpcResponse{Token: req.Token, Err: err}, netsim.Payload{})
}

// Served reports the number of requests completed.
//
// Deprecated: thin read of `rpc.<name>.served`; prefer
// Endpoint.Metrics().Snapshot().
func (s *Server) Served() int64 { return s.served.Value() }

// Deduped reports retried requests answered without re-running the handler.
//
// Deprecated: thin read of `rpc.<name>.deduped`; prefer
// Endpoint.Metrics().Snapshot().
func (s *Server) Deduped() int64 { return s.deduped.Value() }

// Discarded reports requests dropped because the server was down.
//
// Deprecated: thin read of `rpc.<name>.discarded`; prefer
// Endpoint.Metrics().Snapshot().
func (s *Server) Discarded() int64 { return s.discarded.Value() }

// QueueLen reports requests waiting for a service thread (also exported as
// the `rpc.<name>.queue_depth` gauge).
func (s *Server) QueueLen() int { return s.q.Len() }

// Down reports whether the server is crashed.
func (s *Server) Down() bool { return s.down }

// SetDown crashes (true) or restarts (false) the server. Crashing discards
// queued requests, forgets the volatile dedup table, and suppresses replies
// from handler executions already underway; the RPC port itself stays bound,
// modeling a machine that is unreachable at the process level rather than
// the NIC level. Durable state recovery is the owner's job (storage servers
// replay their journal on restart).
func (s *Server) SetDown(down bool) {
	if down && !s.down {
		s.epoch++
		s.inflight = make(map[dedupKey]*sim.Future)
		s.order = nil
		for {
			if _, ok := s.q.TryRecv(); !ok {
				break
			}
			s.discarded.Inc()
		}
		if s.disp != nil {
			s.discarded.Add(int64(s.disp.Clear()))
		}
	}
	s.down = down
}

func (s *Server) reply(epoch uint64, req rpcRequest, body interface{}, err error) {
	if s.down || epoch != s.epoch {
		return // crashed (or crashed+restarted) since this execution began
	}
	s.served.Inc()
	size := HeaderSize + req.RespSize
	s.ep.Put(req.From, replyPortal, MatchBits(req.Token), rpcResponse{Token: req.Token, Body: body, Err: err},
		netsim.SyntheticPayload(size-HeaderSize))
}

func (s *Server) worker(p *sim.Proc) {
	for {
		var req rpcRequest
		if s.disp != nil {
			del := s.disp.Next(p)
			if !del.valid {
				continue
			}
			req = del.req
		} else {
			ev := s.q.Recv(p).(*Event)
			var ok bool
			req, ok = ev.Hdr.(rpcRequest)
			if !ok {
				continue
			}
		}
		if s.down {
			s.discarded.Inc()
			continue
		}
		epoch := s.epoch
		if req.ReqID == 0 {
			body, err := s.handler(p, req.From, req.Body)
			s.reply(epoch, req, body, err)
			continue
		}
		key := dedupKey{from: req.From, reqID: req.ReqID}
		if fut, dup := s.inflight[key]; dup {
			// Retry of a request we have seen: wait for (or read) the
			// original execution's result and answer at this reply token.
			s.deduped.Inc()
			v, _ := fut.Wait(p)
			r := v.(dedupResult)
			s.reply(epoch, req, r.body, r.err)
			continue
		}
		fut := sim.NewFuture()
		s.inflight[key] = fut
		s.order = append(s.order, key)
		s.evictDedup()
		body, err := s.handler(p, req.From, req.Body)
		fut.Complete(dedupResult{body: body, err: err}, nil)
		s.reply(epoch, req, body, err)
	}
}

// evictDedup trims the dedup table to its cap, oldest-first, skipping
// entries whose execution is still in flight: evicting one of those would
// let a later retransmission re-run a non-idempotent handler. The table may
// transiently exceed the cap while more than dedupCap executions are
// genuinely concurrent; later inserts trim it back once they complete.
func (s *Server) evictDedup() {
	for len(s.order) > s.dedupCap {
		victim := -1
		for i, k := range s.order {
			if s.inflight[k].Done() {
				victim = i
				break
			}
		}
		if victim < 0 {
			return
		}
		delete(s.inflight, s.order[victim])
		s.order = append(s.order[:victim], s.order[victim+1:]...)
	}
}

// ErrRPCTimeout is returned by CallTimeout when the deadline passes.
var ErrRPCTimeout = errors.New("portals: rpc timeout")

// Breaker is the client-side circuit breaker consulted by a Caller before
// each attempt. Allow asked false means fast-fail with ErrCircuitOpen instead
// of issuing the attempt; Record feeds every attempt's outcome (nil on
// success) back so the breaker can trip on consecutive timeouts/overloads.
// Keyed by (target, portal) so one sick service on a node does not condemn
// its healthy neighbors.
type Breaker interface {
	Allow(target netsim.NodeID, pt Index) bool
	Record(target netsim.NodeID, pt Index, err error)
}

// Caller issues RPCs from an endpoint. Tokens come from the endpoint's
// shared space, so any number of callers may coexist on one node.
type Caller struct {
	ep    *Endpoint
	retry RetryPolicy
	rng   *sim.Rand

	class   uint8   // stamped on every outgoing request (qos scheduling class)
	breaker Breaker // optional fast-fail gate, consulted per attempt

	// Per-caller instruments (tests assert individual callers), mirrored
	// into the shared node-wide `rpc.client.<node>.retries|late_replies`
	// registry counters so snapshots see the totals.
	lateReplies metrics.Counter
	retries     metrics.Counter

	nodeLateReplies *metrics.Counter
	nodeRetries     *metrics.Counter
}

// NewCaller creates a caller on ep.
func NewCaller(ep *Endpoint) *Caller {
	scope := ep.Metrics().Scope("rpc").Scope("client").Scope(ep.NodeName())
	return &Caller{
		ep:              ep,
		nodeLateReplies: scope.Counter("late_replies"),
		nodeRetries:     scope.Counter("retries"),
	}
}

// Endpoint returns the caller's endpoint.
func (c *Caller) Endpoint() *Endpoint { return c.ep }

// SetRetry arms Call with a retry policy. rng seeds the backoff jitter and
// may be nil for a default seed; pass a per-caller seeded generator to keep
// chaos runs deterministic.
func (c *Caller) SetRetry(pol RetryPolicy, rng *sim.Rand) {
	if rng == nil {
		rng = sim.NewRand(0)
	}
	c.retry, c.rng = pol, rng
}

// Retry returns the caller's retry policy (zero if disabled).
func (c *Caller) Retry() RetryPolicy { return c.retry }

// SetClass stamps every request this caller sends with a scheduling class
// (0 = foreground, the default). Admission-controlled servers use it to run
// foreground traffic ahead of background batches (burst drains).
func (c *Caller) SetClass(class uint8) { c.class = class }

// SetBreaker arms the caller with a circuit breaker. nil disarms.
func (c *Caller) SetBreaker(b Breaker) { c.breaker = b }

// LateReplies reports responses that arrived after their attempt timed out.
// Each was dropped at the reply portal — never delivered to another call.
// Node-wide totals are registered as `rpc.client.<node>.late_replies`.
func (c *Caller) LateReplies() int64 { return c.lateReplies.Value() }

// Retries reports re-sent attempts (excluding each call's first attempt).
// Node-wide totals are registered as `rpc.client.<node>.retries`.
func (c *Caller) Retries() int64 { return c.retries.Value() }

// Call sends req (occupying reqSize bytes on the wire, in addition to the
// portals header) to the server at (target, pt) and blocks p for the
// response. respSize tells the server how large its answer is on the wire.
// With a retry policy armed (SetRetry), lost requests or responses are
// retried under a per-attempt timeout with exponential backoff; the server
// deduplicates re-executions, so retried calls stay exactly-once.
func (c *Caller) Call(p *sim.Proc, target netsim.NodeID, pt Index, req interface{}, reqSize, respSize int64) (interface{}, error) {
	if !c.retry.Enabled() {
		return c.call(p, target, pt, req, reqSize, respSize, 0, 0)
	}
	reqID := c.ep.nextTok()
	var lastErr error
	for a := 0; a < c.retry.MaxAttempts; a++ {
		if a > 0 {
			c.retries.Inc()
			c.nodeRetries.Inc()
			p.Sleep(c.retry.Pause(a-1, c.rng))
		}
		v, err := c.call(p, target, pt, req, reqSize, respSize, c.retry.Timeout, reqID)
		if errors.Is(err, ErrCircuitOpen) {
			// Fast-fail, not a lost message: retrying would just spin on
			// the open breaker (ErrCircuitOpen wraps ErrRPCTimeout so the
			// caller's failover logic still reads it as "route around").
			return v, err
		}
		if !errors.Is(err, ErrRPCTimeout) {
			return v, err
		}
		lastErr = err
	}
	return nil, lastErr
}

// CallTimeout is Call with a deadline and exactly one attempt; it returns
// ErrRPCTimeout if no response arrives in time. A response that arrives
// later is dropped at the reply portal and counted (LateReplies) — reply
// tokens are never reused, so a late response can never satisfy a
// different call.
func (c *Caller) CallTimeout(p *sim.Proc, target netsim.NodeID, pt Index, req interface{}, reqSize, respSize int64, timeout time.Duration) (interface{}, error) {
	return c.call(p, target, pt, req, reqSize, respSize, timeout, 0)
}

func (c *Caller) call(p *sim.Proc, target netsim.NodeID, pt Index, req interface{}, reqSize, respSize int64, timeout time.Duration, reqID uint64) (interface{}, error) {
	if c.breaker != nil && !c.breaker.Allow(target, pt) {
		return nil, ErrCircuitOpen
	}
	token := c.ep.nextTok()
	mb := sim.NewMailbox(c.ep.Kernel(), fmt.Sprintf("rpc-reply-%d", token))
	me := c.ep.AttachOnce(replyPortal, MatchBits(token), 0, &MD{EQ: mb})
	c.ep.Put(target, pt, 0, rpcRequest{Token: token, ReqID: reqID, From: c.ep.Node(), Class: c.class, Body: req, RespSize: respSize},
		netsim.SyntheticPayload(reqSize))

	var ev interface{}
	if timeout > 0 {
		v, ok := mb.RecvTimeout(p, timeout)
		if !ok {
			me.Unlink()
			// If the response is merely late (not lost), count it when it
			// finally lands instead of mistaking it for a stray message.
			c.ep.watchLate(replyPortal, MatchBits(token), func() {
				c.lateReplies.Inc()
				c.nodeLateReplies.Inc()
			})
			if c.breaker != nil {
				c.breaker.Record(target, pt, ErrRPCTimeout)
			}
			return nil, ErrRPCTimeout
		}
		ev = v
	} else {
		ev = mb.Recv(p)
	}
	resp := ev.(*Event).Hdr.(rpcResponse)
	if c.breaker != nil {
		c.breaker.Record(target, pt, resp.Err)
	}
	return resp.Body, resp.Err
}
