package portals

import (
	"testing"
	"time"

	"lwfs/internal/netsim"
	"lwfs/internal/sim"
)

// Wall-clock cost of one simulated RPC round trip (the unit the
// experiment sweeps are made of).
func BenchmarkSimulatedRPC(b *testing.B) {
	k := sim.NewKernel()
	net := netsim.New(k, 10*time.Microsecond)
	cfg := netsim.Config{EgressBW: 230 << 20, IngressBW: 230 << 20}
	client := NewEndpoint(net, net.AddNode("client", cfg))
	server := NewEndpoint(net, net.AddNode("server", cfg))
	Serve(server, 10, "echo", 2, func(p *sim.Proc, from netsim.NodeID, req interface{}) (interface{}, error) {
		return req, nil
	})
	c := NewCaller(client)
	b.ResetTimer()
	k.Spawn("bench", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			if _, err := c.Call(p, server.Node(), 10, i, 128, 128); err != nil {
				b.Error(err)
				return
			}
		}
	})
	if err := k.Run(sim.MaxTime); err != nil {
		b.Fatal(err)
	}
}

// Wall-clock cost of one simulated one-sided Get of a 1 MiB chunk — the
// inner loop of every server-directed transfer.
func BenchmarkSimulatedGet(b *testing.B) {
	k := sim.NewKernel()
	net := netsim.New(k, 10*time.Microsecond)
	cfg := netsim.Config{EgressBW: 230 << 20, IngressBW: 230 << 20}
	a := NewEndpoint(net, net.AddNode("a", cfg))
	c := NewEndpoint(net, net.AddNode("b", cfg))
	c.Attach(5, 1, 0, &MD{Payload: netsim.SyntheticPayload(1 << 30)})
	b.ResetTimer()
	k.Spawn("bench", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			if _, err := a.Get(p, c.Node(), 5, 1, 0, 1<<20); err != nil {
				b.Error(err)
				return
			}
		}
	})
	if err := k.Run(sim.MaxTime); err != nil {
		b.Fatal(err)
	}
}
