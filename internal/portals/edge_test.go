package portals

import (
	"fmt"
	"testing"
	"time"

	"lwfs/internal/netsim"
	"lwfs/internal/sim"
)

func TestServerCountersAndQueue(t *testing.T) {
	r := newRig(t, 3, 1000*mb)
	srv := Serve(r.eps[2], 10, "slow", 1, func(p *sim.Proc, from netsim.NodeID, req interface{}) (interface{}, error) {
		p.Sleep(10 * time.Millisecond)
		return nil, nil
	})
	for i := 0; i < 3; i++ {
		c := NewCaller(r.eps[i%2])
		r.k.Spawn(fmt.Sprintf("c%d", i), func(p *sim.Proc) {
			c.Call(p, r.eps[2].Node(), 10, nil, 64, 64) //nolint:errcheck
		})
	}
	// Peek at the queue while the single worker is busy.
	var maxQueue int
	r.k.Spawn("observer", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			if q := srv.QueueLen(); q > maxQueue {
				maxQueue = q
			}
			p.Sleep(time.Millisecond)
		}
	})
	if err := r.k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	if srv.Served() != 3 {
		t.Fatalf("served = %d", srv.Served())
	}
	if maxQueue < 1 {
		t.Fatalf("queue never built up behind the single worker")
	}
}

func TestMultipleCallersShareEndpoint(t *testing.T) {
	// Two callers on ONE endpoint (co-located client processes) must not
	// collide on reply tokens.
	r := newRig(t, 2, 1000*mb)
	Serve(r.eps[1], 10, "echo", 4, func(p *sim.Proc, from netsim.NodeID, req interface{}) (interface{}, error) {
		p.Sleep(time.Millisecond)
		return req, nil
	})
	for i := 0; i < 4; i++ {
		i := i
		c := NewCaller(r.eps[0]) // all on node 0
		r.k.Spawn(fmt.Sprintf("caller%d", i), func(p *sim.Proc) {
			for j := 0; j < 5; j++ {
				v, err := c.Call(p, r.eps[1].Node(), 10, i*100+j, 64, 64)
				if err != nil || v.(int) != i*100+j {
					t.Errorf("caller %d call %d: %v %v", i, j, v, err)
					return
				}
			}
		})
	}
	if err := r.k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
}

func TestEndpointTokenUniqueness(t *testing.T) {
	r := newRig(t, 2, mb)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		tok := r.eps[0].NextToken()
		if seen[tok] {
			t.Fatalf("token %d repeated", tok)
		}
		seen[tok] = true
	}
}
