package portals

import (
	"time"

	"lwfs/internal/sim"
)

// RetryPolicy describes how a caller rides out lost messages: up to
// MaxAttempts tries, each bounded by Timeout, separated by exponential
// backoff with jitter. The zero value (or MaxAttempts <= 1, or Timeout == 0)
// disables retry entirely — the pre-fault-tolerance behavior.
//
// Retry is safe because every retried RPC carries a request ID the server
// uses to deduplicate re-executions (see Server), and the jitter draws from
// a seeded sim.Rand so a lossy run stays deterministic.
type RetryPolicy struct {
	MaxAttempts int           // total attempts, including the first
	Timeout     time.Duration // per-attempt deadline
	Backoff     time.Duration // pause after the first failed attempt
	MaxBackoff  time.Duration // backoff ceiling (0 = uncapped)
	Jitter      time.Duration // uniform extra pause in [0, Jitter)
}

// DefaultRetry is a sane policy for control RPCs in the simulated cluster:
// the per-attempt timeout covers queueing behind a saturated server, and
// five attempts ride out multi-window drop schedules.
var DefaultRetry = RetryPolicy{
	MaxAttempts: 5,
	Timeout:     20 * time.Millisecond,
	Backoff:     500 * time.Microsecond,
	MaxBackoff:  8 * time.Millisecond,
	Jitter:      200 * time.Microsecond,
}

func (pol RetryPolicy) Enabled() bool { return pol.MaxAttempts > 1 && pol.Timeout > 0 }

// pause computes the sleep after failed attempt number a (0-based).
func (pol RetryPolicy) Pause(a int, rng *sim.Rand) time.Duration {
	d := pol.Backoff
	for i := 0; i < a && (pol.MaxBackoff == 0 || d < pol.MaxBackoff); i++ {
		d *= 2
	}
	if pol.MaxBackoff > 0 && d > pol.MaxBackoff {
		d = pol.MaxBackoff
	}
	if pol.Jitter > 0 && rng != nil {
		d += rng.Duration(pol.Jitter)
	}
	return d
}
