package lwfs_test

import (
	"bytes"
	"testing"

	"lwfs"
)

// TestFacadeEndToEnd drives the whole public surface: build, deploy,
// authenticate, authorize, store, name, transact, lock — through package
// lwfs only.
func TestFacadeEndToEnd(t *testing.T) {
	spec := lwfs.DevCluster()
	spec.ComputeNodes = 4
	spec = spec.WithServers(4)
	cl := lwfs.NewCluster(spec)
	cl.RegisterUser("u", "pw")
	sys := cl.DeployLWFS()
	c := cl.NewClient(sys, 0)

	cl.Spawn("app", func(p *lwfs.Proc) {
		if err := c.Login(p, "u", "pw"); err != nil {
			t.Fatalf("login: %v", err)
		}
		cid, err := c.CreateContainer(p)
		if err != nil {
			t.Fatalf("container: %v", err)
		}
		caps, err := c.GetCaps(p, cid, lwfs.AllOps...)
		if err != nil {
			t.Fatalf("caps: %v", err)
		}
		tx := c.BeginTxn()
		ref, err := c.CreateObjectTxn(p, c.Server(2), caps, tx)
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		data := []byte("facade round trip")
		if _, err := c.Write(p, ref, caps, 0, lwfs.Bytes(data)); err != nil {
			t.Fatalf("write: %v", err)
		}
		if err := c.Mkdir(p, "/it"); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		if err := c.CreateName(p, "/it/obj", ref, tx); err != nil {
			t.Fatalf("name: %v", err)
		}
		if err := tx.Commit(p); err != nil {
			t.Fatalf("commit: %v", err)
		}
		e, err := c.Lookup(p, "/it/obj")
		if err != nil {
			t.Fatalf("lookup: %v", err)
		}
		got, err := c.Read(p, e.Ref, caps, 0, int64(len(data)))
		if err != nil || !bytes.Equal(got.Data, data) {
			t.Fatalf("read: %q %v", got.Data, err)
		}
		// Lock service through the facade.
		if err := c.Locks().Lock(p, "it", lwfs.Exclusive); err != nil {
			t.Fatalf("lock: %v", err)
		}
		if err := c.Locks().Unlock(p, "it"); err != nil {
			t.Fatalf("unlock: %v", err)
		}
		// NewObjRef round-trips a serialized reference.
		ref2 := lwfs.NewObjRef(int(e.Ref.Node), int(e.Ref.Port), uint64(e.Ref.ID))
		if ref2 != e.Ref {
			t.Fatalf("NewObjRef: %+v != %+v", ref2, e.Ref)
		}
	})
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointFacade runs the three §4 implementations through the
// facade wrappers and checks the Figure 9 ordering.
func TestCheckpointFacade(t *testing.T) {
	spec := lwfs.DevCluster().WithServers(4)
	spec.ComputeNodes = 8
	cfg := lwfs.CheckpointConfig{Procs: 8, BytesPerProc: 32 * lwfs.MB, Seed: 9}
	l, err := lwfs.CheckpointLWFS(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := lwfs.CheckpointFilePerProcess(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := lwfs.CheckpointSharedFile(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !(l.ThroughputMBs() > s.ThroughputMBs() && f.ThroughputMBs() > s.ThroughputMBs()) {
		t.Fatalf("ordering broken: lwfs=%.0f fpp=%.0f shared=%.0f",
			l.ThroughputMBs(), f.ThroughputMBs(), s.ThroughputMBs())
	}
}

// TestManyProcsPerNode regression: more client processes than compute
// nodes (the paper's 64 procs on 31 nodes) must work — co-located clients
// share an endpoint and must not collide on tokens, match bits, or
// scatter addresses.
func TestManyProcsPerNode(t *testing.T) {
	spec := lwfs.DevCluster().WithServers(4)
	spec.ComputeNodes = 3 // 12 procs on 3 nodes: 4 clients per endpoint
	res, err := lwfs.CheckpointLWFS(spec, lwfs.CheckpointConfig{
		Procs: 12, BytesPerProc: 8 * lwfs.MB, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Per) != 12 {
		t.Fatalf("only %d procs reported", len(res.Per))
	}
}

// TestRedStormSpecSmall boots a scaled-down Red Storm parameterization to
// guard the Table 2 preset.
func TestRedStormSpecSmall(t *testing.T) {
	spec := lwfs.RedStorm()
	spec.ComputeNodes = 4
	spec.StorageNodes = 2
	res, err := lwfs.CheckpointLWFS(spec, lwfs.CheckpointConfig{
		Procs: 4, BytesPerProc: 64 * lwfs.MB, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two 400 MB/s I/O nodes: aggregate should approach 800 MB/s.
	if tput := res.ThroughputMBs(); tput < 600 || tput > 820 {
		t.Fatalf("red storm throughput = %.0f MB/s, want ~760", tput)
	}
}

// TestDifferentServerCounts sweeps WithServers through the Figure 9 domain.
func TestDifferentServerCounts(t *testing.T) {
	var prev float64
	for _, servers := range []int{2, 4, 8, 16} {
		spec := lwfs.DevCluster().WithServers(servers)
		res, err := lwfs.CheckpointLWFS(spec, lwfs.CheckpointConfig{
			Procs: 16, BytesPerProc: 16 * lwfs.MB, Seed: 3,
		})
		if err != nil {
			t.Fatalf("servers=%d: %v", servers, err)
		}
		tput := res.ThroughputMBs()
		if tput < prev {
			t.Fatalf("throughput fell adding servers: %d servers -> %.0f (prev %.0f)", servers, tput, prev)
		}
		prev = tput
	}
}

// Example-style smoke test: the doc.go snippet compiles and runs.
func TestDocSnippet(t *testing.T) {
	cl := lwfs.NewCluster(func() lwfs.Spec {
		s := lwfs.DevCluster()
		s.ComputeNodes = 1
		return s.WithServers(2)
	}())
	cl.RegisterUser("app", "secret")
	sys := cl.DeployLWFS()
	client := cl.NewClient(sys, 0)
	cl.Spawn("app", func(p *lwfs.Proc) {
		if err := client.Login(p, "app", "secret"); err != nil {
			t.Fatal(err)
		}
		cid, _ := client.CreateContainer(p)
		caps, _ := client.GetCaps(p, cid, lwfs.OpCreate, lwfs.OpWrite, lwfs.OpRead)
		ref, err := client.CreateObject(p, client.Server(0), caps)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := client.Write(p, ref, caps, 0, lwfs.Bytes([]byte("hello"))); err != nil {
			t.Fatal(err)
		}
	})
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
}

// Throughput sanity across payload kinds: synthetic and real-byte writes
// of the same size cost identical virtual time.
func TestSyntheticAndRealTimingsAgree(t *testing.T) {
	elapsed := func(real bool) (d lwfs.Time) {
		spec := lwfs.DevCluster().WithServers(2)
		spec.ComputeNodes = 1
		cl := lwfs.NewCluster(spec)
		cl.RegisterUser("u", "pw")
		sys := cl.DeployLWFS()
		c := cl.NewClient(sys, 0)
		cl.Spawn("w", func(p *lwfs.Proc) {
			c.Login(p, "u", "pw")
			cid, _ := c.CreateContainer(p)
			caps, _ := c.GetCaps(p, cid, lwfs.AllOps...)
			ref, _ := c.CreateObject(p, c.Server(0), caps)
			payload := lwfs.Synthetic(4 * lwfs.MB)
			if real {
				payload = lwfs.Bytes(make([]byte, 4*lwfs.MB))
			}
			start := p.Now()
			if _, err := c.Write(p, ref, caps, 0, payload); err != nil {
				t.Errorf("write: %v", err)
			}
			d = lwfs.Time(p.Now().Sub(start))
		})
		if err := cl.Run(); err != nil {
			t.Fatal(err)
		}
		return d
	}
	if a, b := elapsed(false), elapsed(true); a != b {
		t.Fatalf("synthetic %v != real %v", a, b)
	}
}
