// Filtering: the paper's §6 "remote processing (e.g., remote filtering)"
// direction — active storage. A climate dataset is sharded over every
// storage server; the analysis wants one number per shard (the count of
// extreme-temperature cells). Shipping the filter *name* to the servers
// scans each shard next to its disk and returns 8 bytes per server;
// shipping the *data* to the client funnels the whole dataset through one
// NIC. The program does both and prints the times and bytes moved.
//
//	go run ./examples/filtering
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"lwfs"
	"lwfs/internal/sim"
)

const shardSize = 128 * lwfs.MB

// countExtremes counts bytes above a threshold (and, for synthetic
// payloads, models the same scan by size — a real deployment registers
// real code; the benchmark rig moves virtual data).
func countExtremes(acc []byte, chunk lwfs.Payload) []byte {
	var n uint64
	if len(acc) == 8 {
		n = binary.BigEndian.Uint64(acc)
	}
	for _, b := range chunk.Data {
		if b > 250 {
			n++
		}
	}
	if chunk.Data == nil {
		n += uint64(chunk.Size / 256) // synthetic stand-in: fixed density
	}
	out := make([]byte, 8)
	binary.BigEndian.PutUint64(out, n)
	return out
}

func main() {
	spec := lwfs.DevCluster()
	spec.ComputeNodes = 2
	spec = spec.WithServers(8)
	cl := lwfs.NewCluster(spec)
	cl.RegisterUser("clim", "pw")
	sys := cl.DeployLWFS()
	for _, srv := range sys.Servers {
		srv.RegisterFilter("count-extremes", countExtremes)
	}
	c := cl.NewClient(sys, 0)

	cl.Spawn("analysis", func(p *lwfs.Proc) {
		if err := c.Login(p, "clim", "pw"); err != nil {
			log.Fatal(err)
		}
		cid, _ := c.CreateContainer(p)
		caps, _ := c.GetCaps(p, cid, lwfs.AllOps...)

		refs := make([]lwfs.ObjRef, len(sys.Servers))
		for i := range sys.Servers {
			ref, err := c.CreateObject(p, c.Server(i), caps)
			if err != nil {
				log.Fatal(err)
			}
			refs[i] = ref
			if _, err := c.Write(p, ref, caps, 0, lwfs.Synthetic(shardSize)); err != nil {
				log.Fatal(err)
			}
		}
		total := int64(len(refs)) * shardSize

		scan := func(useFilter bool) (time.Duration, uint64) {
			start := p.Now()
			var wg sim.WaitGroup
			wg.Add(len(refs))
			var extremes uint64
			for i := range refs {
				ref := refs[i]
				p.Kernel().Spawn("scan", func(q *lwfs.Proc) {
					defer wg.Done()
					if useFilter {
						out, err := c.Filter(q, ref, caps, 0, shardSize, "count-extremes", "", 64)
						if err != nil {
							log.Fatal(err)
						}
						extremes += binary.BigEndian.Uint64(out)
					} else {
						got, err := c.Read(q, ref, caps, 0, shardSize)
						if err != nil {
							log.Fatal(err)
						}
						extremes += uint64(got.Size / 256) // client-side scan
					}
				})
			}
			wg.Wait(p)
			return p.Now().Sub(start), extremes
		}

		filterTime, n1 := scan(true)
		readTime, n2 := scan(false)
		if n1 != n2 {
			log.Fatalf("answers disagree: %d vs %d", n1, n2)
		}
		fmt.Printf("dataset: %d MB over %d servers; answer: %d extreme cells\n\n",
			total>>20, len(refs), n1)
		fmt.Printf("remote filtering:  %8v   (~%d bytes crossed the network per server)\n", filterTime, 8)
		fmt.Printf("read-everything:   %8v   (%d MB funneled through one client NIC)\n", readTime, total>>20)
		fmt.Printf("\nactive-storage speedup: %.1fx — the scan ran next to %d disks in parallel (§6)\n",
			readTime.Seconds()/filterTime.Seconds(), len(refs))
	})

	if err := cl.Run(); err != nil {
		log.Fatal(err)
	}
}
