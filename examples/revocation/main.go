// Revocation: the §3.1.4 walk-through. Alice shares a container with Bob,
// Bob writes through a warmed capability cache, then Alice "chmod -w"s the
// container: the authorization service follows its back pointers to
// invalidate exactly the write capabilities cached on storage servers.
// Bob's next write is refused mid-stream — near-immediately — while his
// read capability keeps working (partial revocation).
//
//	go run ./examples/revocation
package main

import (
	"fmt"
	"log"

	"lwfs"
	"lwfs/internal/sim"
)

func main() {
	spec := lwfs.DevCluster()
	spec.ComputeNodes = 2
	spec = spec.WithServers(2)
	cl := lwfs.NewCluster(spec)
	cl.RegisterUser("alice", "pa")
	cl.RegisterUser("bob", "pb")
	sys := cl.DeployLWFS()
	alice := cl.NewClient(sys, 0)
	bob := cl.NewClient(sys, 1)

	handoff := sim.NewMailbox(cl.K, "handoff")
	bobReady := sim.NewMailbox(cl.K, "bob-ready")

	cl.Spawn("alice", func(p *lwfs.Proc) {
		if err := alice.Login(p, "alice", "pa"); err != nil {
			log.Fatal(err)
		}
		cid, _ := alice.CreateContainer(p)
		for _, op := range lwfs.AllOps {
			if err := alice.SetACL(p, cid, op, "bob", true); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Println("alice: container created, bob granted every operation")
		handoff.Send(cid)

		bobReady.Recv(p) // bob has written once; his caps are cached
		fmt.Println("alice: revoking WRITE only (chmod -w) ...")
		if err := alice.Revoke(p, cid, lwfs.OpWrite); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("alice: revocation complete at %v — storage caches invalidated via back pointers\n", p.Now())
		bobReady.Send("revoked")
	})

	cl.Spawn("bob", func(p *lwfs.Proc) {
		cid := handoff.Recv(p).(lwfs.ContainerID)
		if err := bob.Login(p, "bob", "pb"); err != nil {
			log.Fatal(err)
		}
		caps, err := bob.GetCaps(p, cid, lwfs.OpCreate, lwfs.OpWrite, lwfs.OpRead)
		if err != nil {
			log.Fatal(err)
		}
		ref, err := bob.CreateObject(p, bob.Server(0), caps)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := bob.Write(p, ref, caps, 0, lwfs.Bytes([]byte("bob v1"))); err != nil {
			log.Fatal(err)
		}
		fmt.Println("bob:   wrote v1 (write capability now cached on the storage server)")
		bobReady.Send("written")

		if msg := bobReady.Recv(p).(string); msg != "revoked" {
			log.Fatalf("unexpected: %v", msg)
		}
		_, werr := bob.Write(p, ref, caps, 0, lwfs.Bytes([]byte("bob v2")))
		if werr != nil {
			fmt.Printf("bob:   write refused after revocation: %v\n", werr)
		} else {
			log.Fatal("bob: write succeeded after revocation!")
		}
		got, rerr := bob.Read(p, ref, caps, 0, 6)
		if rerr != nil {
			log.Fatalf("bob: read also broke: %v", rerr)
		}
		fmt.Printf("bob:   read still works (partial revocation): %q\n", got.Data)

		// The door reopens if alice grants again: capabilities are cheap.
		caps2, err := bob.GetCaps(p, cid, lwfs.OpRead)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := bob.Read(p, ref, caps2, 0, 6); err != nil {
			log.Fatal(err)
		}
		fmt.Println("bob:   fresh read capability acquired and honored")
	})

	if err := cl.Run(); err != nil {
		log.Fatal(err)
	}
}
