// Quickstart: boot a simulated LWFS system, authenticate, create a
// container, acquire capabilities, store and retrieve an object, and give
// it a name — the whole §3 API surface in one sitting.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lwfs"
)

func main() {
	// A small machine: 1 admin node, 2 storage nodes x 2 servers, 4
	// compute nodes (the paper's dev cluster, shrunk).
	spec := lwfs.DevCluster()
	spec.ComputeNodes = 4
	spec = spec.WithServers(4)
	cl := lwfs.NewCluster(spec)
	cl.RegisterUser("ada", "hunter2")
	sys := cl.DeployLWFS()
	client := cl.NewClient(sys, 0)

	cl.Spawn("quickstart", func(p *lwfs.Proc) {
		// GETCREDS: authenticate against the external mechanism.
		if err := client.Login(p, "ada", "hunter2"); err != nil {
			log.Fatalf("login: %v", err)
		}
		fmt.Println("authenticated as ada (credential is opaque and transferable)")

		// CREATECONTAINER + GETCAPS: coarse-grained authorization.
		cid, err := client.CreateContainer(p)
		if err != nil {
			log.Fatalf("container: %v", err)
		}
		caps, err := client.GetCaps(p, cid, lwfs.AllOps...)
		if err != nil {
			log.Fatalf("caps: %v", err)
		}
		fmt.Printf("container %d created; %d capabilities in hand\n", cid, len(caps.Caps))

		// CREATEOBJ + write (the storage server *pulls* the data) + read
		// (the server *pushes* it back).
		ref, err := client.CreateObject(p, client.Server(1), caps)
		if err != nil {
			log.Fatalf("create: %v", err)
		}
		message := []byte("direct, capability-checked access to object storage")
		if _, err := client.Write(p, ref, caps, 0, lwfs.Bytes(message)); err != nil {
			log.Fatalf("write: %v", err)
		}
		back, err := client.Read(p, ref, caps, 0, int64(len(message)))
		if err != nil {
			log.Fatalf("read: %v", err)
		}
		fmt.Printf("round trip through server %d: %q\n", ref.Node, back.Data)

		// Naming is a service *above* the core: one entry for the dataset.
		if err := client.Mkdir(p, "/datasets"); err != nil {
			log.Fatalf("mkdir: %v", err)
		}
		if err := client.CreateName(p, "/datasets/quickstart", ref, nil); err != nil {
			log.Fatalf("name: %v", err)
		}
		entry, err := client.Lookup(p, "/datasets/quickstart")
		if err != nil {
			log.Fatalf("lookup: %v", err)
		}
		fmt.Printf("named it %s -> object %d on node %d\n", entry.Path, entry.Ref.ID, entry.Ref.Node)

		st, err := client.Stat(p, ref, caps)
		if err != nil {
			log.Fatalf("stat: %v", err)
		}
		fmt.Printf("object size %d bytes, modified at virtual time %v\n", st.Size, st.Modified)
		fmt.Printf("simulated wall clock consumed: %v\n", p.Now())
	})

	if err := cl.Run(); err != nil {
		log.Fatal(err)
	}
}
