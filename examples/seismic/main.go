// Seismic: application-controlled data distribution, the motivation the
// paper opens with (§1: seismic imaging is one of the data-intensive codes
// whose "data-distribution policies match the application's access
// patterns", Oldfield/Womble/Ober reference [27]).
//
// A marine seismic survey records, for every SHOT (source firing), one
// trace per OFFSET (receiver distance). Processing reads the same data two
// ways:
//
//   - shot gathers  (all offsets of one shot)   — used by migration
//   - offset gathers (one offset of every shot) — used by velocity analysis
//
// A general-purpose file system forces one layout for both. Because the
// LWFS core imposes *no* distribution policy, this program stores the
// survey twice — shot-major and offset-major — each layout putting its
// gather contiguous on a single server, then times both access patterns
// against both layouts. The matched layout wins by roughly the ratio of
// sequential to strided access, which is the paper's point: the library
// owning placement beats one-size-fits-all.
//
//	go run ./examples/seismic
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"lwfs"
	"lwfs/internal/trace"
)

const (
	shots     = 32
	offsets   = 16
	traceSize = int64(256) << 10 // 256 KiB per trace
)

func main() {
	traceOut := flag.String("trace", "", "record the survey's I/O as a replayable trace at this path")
	flag.Parse()

	spec := lwfs.DevCluster()
	spec.ComputeNodes = 2
	spec = spec.WithServers(8)
	cl := lwfs.NewCluster(spec)
	cl.RegisterUser("geo", "pw")
	sys := cl.DeployLWFS()
	c := cl.NewClient(sys, 0)

	// With -trace, every survey operation is also logged as a trace event
	// against logical per-gather files (one stream: the survey process).
	// The object writes are synthetic (seed 0), so the trace carries the
	// shape of the workload — sizes, offsets, orderings — without payloads.
	var rec *trace.Recorder
	if *traceOut != "" {
		rec = trace.NewRecorder()
	}
	recOp := func(p *lwfs.Proc, op trace.Op, path string, off, n int64) {
		if rec == nil {
			return
		}
		rec.Add(trace.Event{T: p.Now(), Op: op, Path: path, Off: off, Len: n})
	}
	shotPath := func(s int) string { return fmt.Sprintf("/shot/s%02d.dat", s) }
	offPath := func(o int) string { return fmt.Sprintf("/off/o%02d.dat", o) }
	redistPath := func(o int) string { return fmt.Sprintf("/redist/o%02d.dat", o) }

	cl.Spawn("survey", func(p *lwfs.Proc) {
		if err := c.Login(p, "geo", "pw"); err != nil {
			log.Fatal(err)
		}
		cid, _ := c.CreateContainer(p)
		caps, err := c.GetCaps(p, cid, lwfs.AllOps...)
		if err != nil {
			log.Fatal(err)
		}

		recOp(p, trace.OpMkdir, "/shot", 0, 0)
		recOp(p, trace.OpMkdir, "/off", 0, 0)
		recOp(p, trace.OpMkdir, "/redist", 0, 0)

		// Layout A (shot-major): one object per shot, all its offsets
		// contiguous; shots round-robin over servers.
		shotObjs := make([]lwfs.ObjRef, shots)
		for s := 0; s < shots; s++ {
			ref, err := c.CreateObject(p, c.Server(s), caps)
			if err != nil {
				log.Fatal(err)
			}
			shotObjs[s] = ref
			recOp(p, trace.OpCreate, shotPath(s), 0, 0)
			if _, err := c.Write(p, ref, caps, 0, lwfs.Synthetic(traceSize*int64(offsets))); err != nil {
				log.Fatal(err)
			}
			recOp(p, trace.OpWrite, shotPath(s), 0, traceSize*int64(offsets))
			recOp(p, trace.OpClose, shotPath(s), 0, 0)
		}
		// Layout B (offset-major): one object per offset class.
		offObjs := make([]lwfs.ObjRef, offsets)
		for o := 0; o < offsets; o++ {
			ref, err := c.CreateObject(p, c.Server(o), caps)
			if err != nil {
				log.Fatal(err)
			}
			offObjs[o] = ref
			recOp(p, trace.OpCreate, offPath(o), 0, 0)
			if _, err := c.Write(p, ref, caps, 0, lwfs.Synthetic(traceSize*int64(shots))); err != nil {
				log.Fatal(err)
			}
			recOp(p, trace.OpWrite, offPath(o), 0, traceSize*int64(shots))
			recOp(p, trace.OpClose, offPath(o), 0, 0)
		}

		// Access pattern 1: read one full shot gather.
		readShotFromShotMajor := timeIt(p, func() {
			recOp(p, trace.OpOpen, shotPath(7), 0, 0)
			mustRead(p, c, shotObjs[7], caps, 0, traceSize*int64(offsets))
			recOp(p, trace.OpRead, shotPath(7), 0, traceSize*int64(offsets))
			recOp(p, trace.OpClose, shotPath(7), 0, 0)
		})
		readShotFromOffsetMajor := timeIt(p, func() {
			for o := 0; o < offsets; o++ {
				recOp(p, trace.OpOpen, offPath(o), 0, 0)
				mustRead(p, c, offObjs[o], caps, int64(7)*traceSize, traceSize)
				recOp(p, trace.OpRead, offPath(o), int64(7)*traceSize, traceSize)
				recOp(p, trace.OpClose, offPath(o), 0, 0)
			}
		})

		// Access pattern 2: read one full offset gather.
		readOffsetFromOffsetMajor := timeIt(p, func() {
			recOp(p, trace.OpOpen, offPath(3), 0, 0)
			mustRead(p, c, offObjs[3], caps, 0, traceSize*int64(shots))
			recOp(p, trace.OpRead, offPath(3), 0, traceSize*int64(shots))
			recOp(p, trace.OpClose, offPath(3), 0, 0)
		})
		readOffsetFromShotMajor := timeIt(p, func() {
			for s := 0; s < shots; s++ {
				recOp(p, trace.OpOpen, shotPath(s), 0, 0)
				mustRead(p, c, shotObjs[s], caps, int64(3)*traceSize, traceSize)
				recOp(p, trace.OpRead, shotPath(s), int64(3)*traceSize, traceSize)
				recOp(p, trace.OpClose, shotPath(s), 0, 0)
			}
		})

		fmt.Printf("seismic survey: %d shots x %d offsets, %d KiB traces, 8 storage servers\n\n",
			shots, offsets, traceSize>>10)
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "access pattern\tshot-major layout\toffset-major layout\tmatched layout speedup")
		fmt.Fprintf(tw, "shot gather (migration)\t%v\t%v\t%.1fx\n",
			readShotFromShotMajor, readShotFromOffsetMajor,
			readShotFromOffsetMajor.Seconds()/readShotFromShotMajor.Seconds())
		fmt.Fprintf(tw, "offset gather (velocity analysis)\t%v\t%v\t%.1fx\n",
			readOffsetFromShotMajor, readOffsetFromOffsetMajor,
			readOffsetFromShotMajor.Seconds()/readOffsetFromOffsetMajor.Seconds())
		tw.Flush()
		fmt.Println("\nthe LWFS core dictates no layout: the application library owns placement,")
		fmt.Println("so each processing stage reads the layout built for it (paper §1, §3.1.1).")

		// Redistribution (§3.1.1: "distribution and redistribution
		// schemes"): rebuild the offset-major layout from the shot-major
		// one, server-to-server — third-party transfers never touch this
		// client's NIC.
		redistObjs := make([]lwfs.ObjRef, offsets)
		for o := range redistObjs {
			ref, err := c.CreateObject(p, c.Server(o+3), caps)
			if err != nil {
				log.Fatal(err)
			}
			redistObjs[o] = ref
			recOp(p, trace.OpCreate, redistPath(o), 0, 0)
		}
		redistStart := p.Now()
		for o := 0; o < offsets; o++ {
			for s := 0; s < shots; s++ {
				if _, err := c.Copy(p, redistObjs[o], caps, int64(s)*traceSize,
					shotObjs[s], caps, int64(o)*traceSize, traceSize); err != nil {
					log.Fatal(err)
				}
				// A third-party copy replays as a read+write pair: the
				// facade has no server-to-server transfer, so the replayed
				// bytes cross the client — the trace still preserves the
				// redistribution's access pattern.
				recOp(p, trace.OpRead, shotPath(s), int64(o)*traceSize, traceSize)
				recOp(p, trace.OpWrite, redistPath(o), int64(s)*traceSize, traceSize)
			}
			recOp(p, trace.OpClose, redistPath(o), 0, 0)
		}
		fmt.Printf("\nredistributed %d MB shot-major -> offset-major via third-party copies in %v\n",
			int64(shots)*int64(offsets)*traceSize>>20, p.Now().Sub(redistStart))
	})

	if err := cl.Run(); err != nil {
		log.Fatal(err)
	}

	if rec != nil {
		if err := rec.WriteFile(*traceOut); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("recorded %d I/O events to %s\n", rec.Len(), *traceOut)
	}
}

func mustRead(p *lwfs.Proc, c *lwfs.Client, ref lwfs.ObjRef, caps lwfs.CapSet, off, n int64) {
	if _, err := c.Read(p, ref, caps, off, n); err != nil {
		log.Fatalf("read: %v", err)
	}
}

func timeIt(p *lwfs.Proc, fn func()) time.Duration {
	start := p.Now()
	fn()
	return p.Now().Sub(start)
}
