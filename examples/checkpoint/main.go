// Checkpoint: the paper's §4 case study, end to end. Runs the same
// checkpoint workload (n processes, 512 MB each, on the simulated
// dev cluster) through all three implementations, prints the phase
// breakdown and throughput the paper plots in Figure 9, then demonstrates
// a restart: the LWFS checkpoint is found by name and read back.
//
//	go run ./examples/checkpoint [-procs 16] [-mb 128] [-servers 8]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"lwfs"
	"lwfs/internal/checkpoint"
	"lwfs/internal/cluster"
)

func main() {
	procs := flag.Int("procs", 16, "client processes")
	mb := flag.Int64("mb", 128, "MB written per process")
	servers := flag.Int("servers", 8, "storage servers")
	flag.Parse()

	spec := cluster.DevCluster().WithServers(*servers)
	cfg := checkpoint.Config{Procs: *procs, BytesPerProc: *mb << 20, Seed: 1}

	type row struct {
		name string
		res  checkpoint.Result
	}
	var rows []row
	for _, impl := range []struct {
		name string
		run  func(cluster.Spec, checkpoint.Config) (checkpoint.Result, error)
	}{
		{"Lustre, one shared file", checkpoint.RunPFSShared},
		{"Lustre, file per process", checkpoint.RunPFSFilePerProcess},
		{"LWFS, object per process", checkpoint.RunLWFS},
	} {
		res, err := impl.run(spec, cfg)
		if err != nil {
			log.Fatalf("%s: %v", impl.name, err)
		}
		rows = append(rows, row{impl.name, res})
	}

	fmt.Printf("checkpoint: %d processes x %d MB over %d storage servers\n\n", *procs, *mb, *servers)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "implementation\tcreate/open\twrite\tsync\tclose/commit\ttotal\tMB/s")
	for _, r := range rows {
		m := r.res.MaxTimes
		fmt.Fprintf(tw, "%s\t%v\t%v\t%v\t%v\t%v\t%.0f\n",
			r.name, m.Create, m.Write, m.Sync, m.Close, r.res.Elapsed, r.res.ThroughputMBs())
	}
	tw.Flush()

	fmt.Println("\nrestart demo: finding and reading an LWFS checkpoint by name")
	restart(spec)
}

// restart runs a tiny checkpoint with real bytes and reads it back the way
// a restarting application would: resolve the name, read the metadata
// object, then read each rank's object.
func restart(spec cluster.Spec) {
	spec.ComputeNodes = 4
	cl := lwfs.NewCluster(spec)
	cl.RegisterUser("app", "pw")
	sys := cl.DeployLWFS()
	c := cl.NewClient(sys, 0)
	cl.Spawn("restart-demo", func(p *lwfs.Proc) {
		if err := c.Login(p, "app", "pw"); err != nil {
			log.Fatal(err)
		}
		cid, _ := c.CreateContainer(p)
		caps, _ := c.GetCaps(p, cid, lwfs.AllOps...)

		// Checkpoint with real state, transactionally.
		tx := c.BeginTxn()
		var md string
		for rank := 0; rank < 4; rank++ {
			ref, err := c.CreateObjectTxn(p, c.Server(rank), caps, tx)
			if err != nil {
				log.Fatal(err)
			}
			state := fmt.Sprintf("rank %d: iteration=40000 residual=1.2e-9", rank)
			if _, err := c.Write(p, ref, caps, 0, lwfs.Bytes([]byte(state))); err != nil {
				log.Fatal(err)
			}
			md += fmt.Sprintf("%d %d %d %d\n", ref.Node, ref.Port, ref.ID, len(state))
		}
		mdRef, err := c.CreateObjectTxn(p, c.Server(0), caps, tx)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := c.Write(p, mdRef, caps, 0, lwfs.Bytes([]byte(md))); err != nil {
			log.Fatal(err)
		}
		if err := c.CreateName(p, "/ckpt-step-40000", mdRef, tx); err != nil {
			log.Fatal(err)
		}
		if err := tx.Commit(p); err != nil {
			log.Fatal(err)
		}

		// --- restart path ---
		entry, err := c.Lookup(p, "/ckpt-step-40000")
		if err != nil {
			log.Fatal(err)
		}
		meta, err := c.Read(p, entry.Ref, caps, 0, 4096)
		if err != nil {
			log.Fatal(err)
		}
		var node, port, id, size int
		rest := string(meta.Data[:len(md)])
		for rank := 0; rank < 4; rank++ {
			if _, err := fmt.Sscanf(rest, "%d %d %d %d\n", &node, &port, &id, &size); err != nil {
				log.Fatal(err)
			}
			// consume one line
			for i, ch := range rest {
				if ch == '\n' {
					rest = rest[i+1:]
					break
				}
			}
			ref := lwfs.NewObjRef(node, port, uint64(id))
			state, err := c.Read(p, ref, caps, 0, int64(size))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  restored %q\n", state.Data)
		}
	})
	if err := cl.Run(); err != nil {
		log.Fatal(err)
	}
}
