// Climate: the scientific-data library (internal/scidata — the "HDF-5"
// layer of the paper's Figure 2) running directly on the LWFS core. A
// simulation writes a 3-D temperature field timestep by timestep; an
// analysis process later opens the dataset by name, reads the metadata it
// needs, and extracts hyperslabs — a time series at one grid point and one
// full timestep — without a parallel file system anywhere in the stack.
//
//	go run ./examples/climate
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"math"

	"lwfs"
	"lwfs/internal/scidata"
	"lwfs/internal/sim"
	"lwfs/internal/trace"
)

const (
	steps = 24 // timesteps (dimension 0)
	ny    = 32 // grid rows
	nx    = 32 // grid cols
)

func main() {
	traceOut := flag.String("trace", "", "record the model/analyst I/O as a replayable trace at this path")
	flag.Parse()

	spec := lwfs.DevCluster()
	spec.ComputeNodes = 2
	spec = spec.WithServers(4)
	cl := lwfs.NewCluster(spec)
	cl.RegisterUser("model", "pw")
	cl.RegisterUser("analyst", "pw")
	sys := cl.DeployLWFS()
	model := cl.NewClient(sys, 0)
	analyst := cl.NewClient(sys, 1)

	share := sim.NewMailbox(cl.K, "share")

	// With -trace, the run is also recorded against the dataset's logical
	// file: the model's timestep writes carry content seeds (the replayed
	// bytes regenerate from the seed, not the trace), the analyst's
	// hyperslab reads become strided ReadAt calls. Two streams: model (0)
	// and analyst (1).
	var rec *trace.Recorder
	if *traceOut != "" {
		rec = trace.NewRecorder()
	}
	const dsPath = "/runs/temperature.dat"
	recOp := func(p *lwfs.Proc, stream int, op trace.Op, off, n int64, seed uint64) {
		if rec == nil {
			return
		}
		rec.Add(trace.Event{T: p.Now(), Stream: stream, Op: op, Path: dsPath, Off: off, Len: n, Seed: seed})
	}

	cl.Spawn("model", func(p *lwfs.Proc) {
		if err := model.Login(p, "model", "pw"); err != nil {
			log.Fatal(err)
		}
		f, err := scidata.Create(p, model, "/runs/exp42")
		if err != nil {
			log.Fatal(err)
		}
		ds, err := f.CreateDataset(p, "temperature", scidata.Float64,
			[]int64{steps, ny, nx}, scidata.Options{ChunkRows: 6})
		if err != nil {
			log.Fatal(err)
		}
		ds.SetAttr(p, "units", "kelvin")
		ds.SetAttr(p, "model", "toy-advection-v1")
		fmt.Printf("model: dataset temperature[%d,%d,%d] float64 over %d chunks\n",
			steps, ny, nx, ds.NumChunks())
		if rec != nil {
			rec.Add(trace.Event{T: p.Now(), Op: trace.OpMkdir, Path: "/runs"})
		}
		recOp(p, 0, trace.OpCreate, 0, 0, 0)

		// One timestep at a time, like a real model's output phase.
		for ts := int64(0); ts < steps; ts++ {
			field := make([]byte, ny*nx*8)
			for y := 0; y < ny; y++ {
				for x := 0; x < nx; x++ {
					v := 273.15 + 15*math.Sin(float64(ts)/4+float64(x)/8) + float64(y)/10
					binary.LittleEndian.PutUint64(field[(y*nx+x)*8:], math.Float64bits(v))
				}
			}
			if err := ds.WriteSlab(p, []int64{ts, 0, 0}, []int64{1, ny, nx}, lwfs.Bytes(field)); err != nil {
				log.Fatal(err)
			}
			recOp(p, 0, trace.OpWrite, ts*ny*nx*8, ny*nx*8, trace.SeedOf(field))
		}
		recOp(p, 0, trace.OpSync, 0, 0, 0)
		recOp(p, 0, trace.OpClose, 0, 0, 0)
		fmt.Printf("model: wrote %d timesteps (%d KB) at virtual time %v\n",
			steps, steps*ny*nx*8/1024, p.Now())

		// Grant the analyst read access; hand over the container.
		for _, op := range []lwfs.Op{lwfs.OpRead, lwfs.OpList} {
			if err := model.SetACL(p, f.Container(), op, "analyst", true); err != nil {
				log.Fatal(err)
			}
		}
		share.Send(f.Container())
	})

	cl.Spawn("analyst", func(p *lwfs.Proc) {
		cid := share.Recv(p).(lwfs.ContainerID)
		if err := analyst.Login(p, "analyst", "pw"); err != nil {
			log.Fatal(err)
		}
		f, err := scidata.Open(p, analyst, "/runs/exp42", cid)
		if err != nil {
			log.Fatal(err)
		}
		names, _ := f.Datasets(p)
		fmt.Printf("analyst: datasets in /runs/exp42: %v\n", names)
		ds, err := f.OpenDataset(p, "temperature")
		if err != nil {
			log.Fatal(err)
		}
		units, _ := ds.GetAttr(p, "units")
		fmt.Printf("analyst: temperature%v (%s)\n", ds.Dims, units)

		// Hyperslab 1: the full time series at grid point (7, 21).
		recOp(p, 1, trace.OpOpen, 0, 0, 0)
		series, err := ds.ReadSlab(p, []int64{0, 7, 21}, []int64{steps, 1, 1})
		if err != nil {
			log.Fatal(err)
		}
		for ts := int64(0); ts < steps; ts++ {
			recOp(p, 1, trace.OpRead, ts*ny*nx*8+(7*nx+21)*8, 8, 0)
		}
		first := math.Float64frombits(binary.LittleEndian.Uint64(series.Data))
		last := math.Float64frombits(binary.LittleEndian.Uint64(series.Data[(steps-1)*8:]))
		fmt.Printf("analyst: T(7,21) over %d steps: %.2f K -> %.2f K\n", steps, first, last)

		// Hyperslab 2: one full timestep (a map for plotting).
		ts12, err := ds.ReadSlab(p, []int64{12, 0, 0}, []int64{1, ny, nx})
		if err != nil {
			log.Fatal(err)
		}
		recOp(p, 1, trace.OpRead, 12*ny*nx*8, ny*nx*8, 0)
		recOp(p, 1, trace.OpClose, 0, 0, 0)
		var sum float64
		for i := 0; i < ny*nx; i++ {
			sum += math.Float64frombits(binary.LittleEndian.Uint64(ts12.Data[i*8:]))
		}
		fmt.Printf("analyst: mean T at step 12 = %.2f K\n", sum/float64(ny*nx))
		fmt.Println("\nno PFS in this stack: dataset -> objects + one name, straight on the LWFS core (Figure 2).")
	})

	if err := cl.Run(); err != nil {
		log.Fatal(err)
	}

	if rec != nil {
		if err := rec.WriteFile(*traceOut); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("recorded %d I/O events to %s\n", rec.Len(), *traceOut)
	}
}
