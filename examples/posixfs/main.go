// Posixfs: the paper's §6 future work running today — a POSIX-style
// parallel file system implemented entirely as a *client library*
// (internal/lwfspfs) over the unmodified LWFS core: naming service for the
// namespace, striped objects for data, the lock service for write
// atomicity, and a distributed transaction wrapping every file create.
//
//	go run ./examples/posixfs
package main

import (
	"fmt"
	"log"

	"lwfs"
	"lwfs/internal/lwfspfs"
	"lwfs/internal/sim"
)

func main() {
	spec := lwfs.DevCluster()
	spec.ComputeNodes = 2
	spec = spec.WithServers(4)
	cl := lwfs.NewCluster(spec)
	cl.RegisterUser("alice", "pa")
	cl.RegisterUser("bob", "pb")
	sys := cl.DeployLWFS()
	alice := cl.NewClient(sys, 0)
	bob := cl.NewClient(sys, 1)

	share := sim.NewMailbox(cl.K, "share")

	cl.Spawn("alice", func(p *lwfs.Proc) {
		if err := alice.Login(p, "alice", "pa"); err != nil {
			log.Fatal(err)
		}
		fs, err := lwfspfs.Format(p, alice, "/home", lwfspfs.Options{StripeUnit: 256 << 10})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("alice: formatted /home (container %d, 256 KiB stripes over %d servers)\n",
			fs.Container(), len(alice.Servers()))

		if err := fs.Mkdir(p, "/results"); err != nil {
			log.Fatal(err)
		}
		f, err := fs.Create(p, "/results/run-001.dat")
		if err != nil {
			log.Fatal(err)
		}
		report := []byte("energy=-1.284e3 hartree; converged in 214 iterations")
		if _, err := f.WriteAt(p, 0, lwfs.Bytes(report)); err != nil {
			log.Fatal(err)
		}
		if err := f.Sync(p); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(p); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("alice: wrote %d bytes to /results/run-001.dat (created transactionally)\n", len(report))

		// Grant bob read access; the container ID travels out of band,
		// like a capability.
		for _, op := range []lwfs.Op{lwfs.OpRead, lwfs.OpList} {
			if err := alice.SetACL(p, fs.Container(), op, "bob", true); err != nil {
				log.Fatal(err)
			}
		}
		share.Send(fs.Container())
	})

	cl.Spawn("bob", func(p *lwfs.Proc) {
		cid := share.Recv(p).(lwfs.ContainerID)
		if err := bob.Login(p, "bob", "pb"); err != nil {
			log.Fatal(err)
		}
		fs, err := lwfspfs.MountReadOnly(p, bob, "/home", cid)
		if err != nil {
			log.Fatal(err)
		}
		names, err := fs.List(p, "/results")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("bob:   ls /results -> %v\n", names)
		f, err := fs.Open(p, "/results/run-001.dat")
		if err != nil {
			log.Fatal(err)
		}
		got, err := f.ReadAt(p, 0, f.Size())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("bob:   read %q\n", got.Data)
		if _, err := f.WriteAt(p, 0, lwfs.Bytes([]byte("vandalism"))); err != nil {
			fmt.Printf("bob:   write refused on read-only mount: capability enforcement held\n")
		} else {
			log.Fatal("bob wrote through a read-only mount")
		}
	})

	if err := cl.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthe POSIX layer is ~500 lines of library code; the LWFS core is untouched (§6).")
}
