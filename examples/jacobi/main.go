// Jacobi: a complete MPI-style application running on the simulated MPP —
// the kind of code the paper's stack exists for (§1: "the need to support
// MPI style programs on a space-shared system"). Eight ranks relax a 1-D
// heat equation with halo exchange (internal/mpi point-to-point), check
// convergence with Allreduce, and checkpoint through the Figure 8 pattern
// every few hundred iterations: per-rank objects inside one distributed
// transaction, a metadata gather, one naming entry.
//
// Halfway through, the job "crashes". A fresh set of processes resolves
// the last checkpoint by name, restores every rank's strip, and carries
// the solve to convergence — the restart path the paper's case study
// motivates.
//
//	go run ./examples/jacobi
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"math"

	"lwfs"
	"lwfs/internal/checkpoint"
	"lwfs/internal/mpi"
	"lwfs/internal/portals"
	"lwfs/internal/trace"
)

const (
	ranks     = 8
	stripLen  = 1024 // cells per rank
	ckptEvery = 300  // iterations between checkpoints
	crashAt   = 700  // the first job dies here
	stopAt    = 1200 // the restarted job's budget
	tolerance = 1e-9 // (Jacobi convergence takes far longer; budget wins)
)

func main() {
	traceOut := flag.String("trace", "", "record the checkpoint/restart I/O as a replayable trace at this path")
	flag.Parse()

	spec := lwfs.DevCluster()
	spec.ComputeNodes = 4 // 8 ranks on 4 nodes
	spec = spec.WithServers(4)
	cl := lwfs.NewCluster(spec)
	cl.RegisterUser("solver", "pw")
	sys := cl.DeployLWFS()

	var rec *trace.Recorder
	if *traceOut != "" {
		rec = trace.NewRecorder()
	}

	clients := make([]*lwfs.Client, ranks)
	for i := range clients {
		clients[i] = cl.NewClient(sys, i)
	}

	// ---- phase 1: solve until the crash, checkpointing as we go ----
	fmt.Printf("jacobi: %d ranks x %d cells; checkpoint every %d iters; crash at iter %d\n",
		ranks, stripLen, ckptEvery, crashAt)
	var lastCkpt string
	phase1 := newJob(cl, clients)
	phase1.rec = rec
	phase1.run(0, crashAt, func(iter int, path string) { lastCkpt = path })
	if err := cl.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job 1: \"crashed\" at iteration %d; last checkpoint: %s\n", crashAt, lastCkpt)

	// ---- phase 2: a fresh job (new processes, new communicator) restores
	// from the last durable checkpoint and carries on ----
	phase2 := newJob(cl, clients)
	phase2.rec = rec
	phase2.restoreFrom = lastCkpt
	phase2.container = phase1.caps.Container // job metadata, like a scratch dir
	phase2.run(crashAt-crashAt%ckptEvery, stopAt, nil)
	if err := cl.Run(); err != nil {
		log.Fatal(err)
	}

	if rec != nil {
		if err := rec.WriteFile(*traceOut); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("recorded %d I/O events to %s\n", rec.Len(), *traceOut)
	}
}

// job owns one solve attempt across all ranks.
type job struct {
	cl      *lwfs.Cluster
	clients []*lwfs.Client
	comm    *mpi.Comm

	restoreFrom string
	container   lwfs.ContainerID
	caps        lwfs.CapSet
	gen         int

	// rec, when set, records each rank's checkpoint/restart I/O as trace
	// events (one stream per rank) for internal/trace's replayer. The
	// recorded paths name the logical per-rank dump files of the Figure 8
	// pattern; replayed against a POSIX-facade mount they become real files.
	rec *trace.Recorder
}

// recOp appends one per-rank trace event at the current virtual time.
func (j *job) recOp(p *lwfs.Proc, id int, op trace.Op, path string, off, n int64, seed uint64) {
	if j.rec == nil {
		return
	}
	j.rec.Add(trace.Event{T: p.Now(), Stream: id, Op: op, Path: path, Off: off, Len: n, Seed: seed})
}

var jobGen int

func newJob(cl *lwfs.Cluster, clients []*lwfs.Client) *job {
	jobGen++
	eps := make([]*portals.Endpoint, len(clients))
	for i, c := range clients {
		eps[i] = c.Endpoint()
	}
	return &job{cl: cl, clients: clients, comm: mpi.New(eps), gen: jobGen}
}

// run spawns the rank processes. onCkpt (rank 0 only) observes checkpoints.
func (j *job) run(startIter, stopIter int, onCkpt func(iter int, path string)) {
	for i := 0; i < ranks; i++ {
		i := i
		j.cl.Spawn(fmt.Sprintf("job%d-rank%d", j.gen, i), func(p *lwfs.Proc) {
			j.rankMain(p, i, startIter, stopIter, onCkpt)
		})
	}
}

func (j *job) rankMain(p *lwfs.Proc, id, startIter, stopIter int, onCkpt func(int, string)) {
	c := j.clients[id]
	rank := j.comm.Rank(id)

	// Rank 0 authenticates, makes the container, shares credential + caps
	// through a broadcast (Figure 4a's scatter, via the mpi layer).
	type setup struct {
		Cred lwfs.Credential
		Caps lwfs.CapSet
	}
	if id == 0 {
		if err := c.Login(p, "solver", "pw"); err != nil {
			panic(err)
		}
		cid := j.container
		if cid == 0 {
			var err error
			cid, err = c.CreateContainer(p)
			if err != nil {
				panic(err)
			}
		}
		caps, err := c.GetCaps(p, cid, lwfs.AllOps...)
		if err != nil {
			panic(err)
		}
		rank.Bcast(p, 0, setup{Cred: c.Credential(), Caps: caps}, 512)
		j.caps = caps
	} else {
		s := rank.Bcast(p, 0, nil, 512).(setup)
		c.SetCredential(s.Cred)
		j.caps = s.Caps
	}
	caps := j.caps

	// Initialize or restore the strip.
	strip := make([]float64, stripLen)
	iter := startIter
	if j.restoreFrom == "" {
		for x := range strip {
			strip[x] = math.Sin(float64(id*stripLen+x) / 300)
		}
	} else {
		// Restart: rank 0 resolves the manifest and broadcasts it.
		var manifest lwfs.CheckpointManifest
		if id == 0 {
			mpath := j.restoreFrom + ".manifest"
			j.recOp(p, id, trace.OpOpen, mpath, 0, 0, 0)
			m, err := lwfs.RestoreCheckpoint(p, c, caps, j.restoreFrom)
			if err != nil {
				panic(err)
			}
			j.recOp(p, id, trace.OpRead, mpath, 0, int64(len(checkpoint.EncodeMetadata(m.Refs, m.BytesPerProc))), 0)
			j.recOp(p, id, trace.OpClose, mpath, 0, 0, 0)
			manifest = m
			fmt.Printf("job 2: restored manifest %s (%d ranks)\n", j.restoreFrom, m.Ranks)
		}
		manifest = rank.Bcast(p, 0, manifest, 1024).(lwfs.CheckpointManifest)
		strip0 := fmt.Sprintf("%s-rank%d.dat", j.restoreFrom, id)
		j.recOp(p, id, trace.OpOpen, strip0, 0, 0, 0)
		payload, err := c.Read(p, manifest.Refs[id], caps, 0, int64(stripLen*8))
		if err != nil {
			panic(err)
		}
		j.recOp(p, id, trace.OpRead, strip0, 0, int64(stripLen*8), 0)
		j.recOp(p, id, trace.OpClose, strip0, 0, 0, 0)
		for x := range strip {
			strip[x] = math.Float64frombits(binary.LittleEndian.Uint64(payload.Data[x*8:]))
		}
	}

	for ; iter < stopIter; iter++ {
		// Halo exchange with neighbors.
		var left, right float64
		if id > 0 {
			rank.Send(id-1, 1, strip[0], 64)
		}
		if id < ranks-1 {
			rank.Send(id+1, 2, strip[stripLen-1], 64)
		}
		if id < ranks-1 {
			v, _ := rank.Recv(p, id+1, 1)
			right = v.(float64)
		} else {
			right = 0
		}
		if id > 0 {
			v, _ := rank.Recv(p, id-1, 2)
			left = v.(float64)
		} else {
			left = 0
		}
		// Relaxation sweep.
		next := make([]float64, stripLen)
		var localResidual float64
		for x := 0; x < stripLen; x++ {
			l, r := left, right
			if x > 0 {
				l = strip[x-1]
			}
			if x < stripLen-1 {
				r = strip[x+1]
			}
			next[x] = (l + r) / 2
			localResidual += math.Abs(next[x] - strip[x])
		}
		strip = next

		// Global convergence check.
		if iter%100 == 99 {
			total := rank.Allreduce(p, localResidual, 64, func(a, b interface{}) interface{} {
				return a.(float64) + b.(float64)
			}).(float64)
			if id == 0 {
				fmt.Printf("job %d: iter %4d residual %.6f (virtual time %v)\n", j.gen, iter+1, total, p.Now())
			}
			if total < tolerance {
				if id == 0 {
					fmt.Printf("job %d: converged at iteration %d\n", j.gen, iter+1)
				}
				return
			}
		}

		// Periodic checkpoint: the Figure 8 pattern over the mpi layer.
		if iter%ckptEvery == ckptEvery-1 {
			path := fmt.Sprintf("/jacobi-step-%06d", iter+1)
			j.checkpointStrip(p, rank, c, caps, id, strip, path)
			if id == 0 {
				fmt.Printf("job %d: checkpointed %s\n", j.gen, path)
				if onCkpt != nil {
					onCkpt(iter+1, path)
				}
			}
		}
	}
}

// checkpointStrip is CHECKPOINT() from Figure 8: create object, dump
// state, gather metadata at rank 0, create the name, two-phase commit.
func (j *job) checkpointStrip(p *lwfs.Proc, rank *mpi.Rank, c *lwfs.Client,
	caps lwfs.CapSet, id int, strip []float64, path string) {
	// One transaction per checkpoint; rank 0 coordinates, the ID is shared
	// the way the capability set was.
	var tx *lwfs.Txn
	if id == 0 {
		tx = c.BeginTxn()
	}
	txp := rank.Bcast(p, 0, tx, 64).(*lwfs.Txn)

	strip0 := fmt.Sprintf("%s-rank%d.dat", path, id)
	j.recOp(p, id, trace.OpCreate, strip0, 0, 0, 0)
	ref, err := c.CreateObjectTxn(p, c.Server(id), caps, txp)
	if err != nil {
		panic(err)
	}
	buf := make([]byte, stripLen*8)
	for x, v := range strip {
		binary.LittleEndian.PutUint64(buf[x*8:], math.Float64bits(v))
	}
	if _, err := c.Write(p, ref, caps, 0, lwfs.Bytes(buf)); err != nil {
		panic(err)
	}
	j.recOp(p, id, trace.OpWrite, strip0, 0, int64(len(buf)), trace.SeedOf(buf))
	if err := c.Sync(p, lwfs.Target{Node: ref.Node, Port: ref.Port}, caps); err != nil {
		panic(err)
	}
	j.recOp(p, id, trace.OpSync, strip0, 0, 0, 0)
	j.recOp(p, id, trace.OpClose, strip0, 0, 0, 0)

	// Metadata gather to rank 0 (log-tree).
	gathered := rank.Gather(p, 0, ref, 64)
	if id == 0 {
		refs := make([]lwfs.ObjRef, ranks)
		for i, v := range gathered {
			refs[i] = v.(lwfs.ObjRef)
		}
		mdRef, err := c.CreateObjectTxn(p, c.Server(0), caps, txp)
		if err != nil {
			panic(err)
		}
		manifest := path + ".manifest"
		j.recOp(p, id, trace.OpCreate, manifest, 0, 0, 0)
		md := checkpoint.EncodeMetadata(refs, int64(stripLen*8))
		if _, err := c.Write(p, mdRef, caps, 0, lwfs.Bytes(md)); err != nil {
			panic(err)
		}
		j.recOp(p, id, trace.OpWrite, manifest, 0, int64(len(md)), trace.SeedOf(md))
		j.recOp(p, id, trace.OpClose, manifest, 0, 0, 0)
		if err := c.CreateName(p, path, mdRef, txp); err != nil {
			panic(err)
		}
		if err := txp.Commit(p); err != nil {
			panic(err)
		}
	}
	rank.Barrier(p) // no rank computes on state that isn't durable yet
}
